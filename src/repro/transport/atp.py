"""ATP-like explicit-rate baseline.

The paper's second comparison protocol represents the class of
explicit rate-based transports for ad-hoc networks (ATP, Sundaresan et
al. 2003): intermediate nodes stamp the available rate into data packet
headers, the receiver feeds the collected rate back to the sender at a
**constant** period (chosen larger than the RTT, as ATP recommends),
and loss recovery is **end-to-end only** — there is no in-network
caching and no per-packet reliability adjustment.  Like TCP it offers
only full reliability.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.packet import AckInfo, Packet, PacketType
from repro.mac.tdma import LinkContext
from repro.sim.network import Network
from repro.sim.stats import FlowStats
from repro.transport.base import FlowHandle, TransportProtocol
from repro.util.ewma import EWMA
from repro.util.validation import clamp, require_positive


@dataclass(frozen=True)
class AtpConfig:
    """Parameters of the ATP-like baseline."""

    packet_size_bytes: float = 800.0
    header_bytes: float = 32.0
    ack_bytes: float = 60.0
    feedback_period: float = 3.0
    initial_rate_pps: float = 1.0
    min_rate_pps: float = 0.1
    max_rate_pps: float = 50.0
    rate_alpha: float = 0.3
    rate_safety_factor: float = 0.9

    def __post_init__(self) -> None:
        require_positive(self.packet_size_bytes, "packet_size_bytes")
        require_positive(self.feedback_period, "feedback_period")
        require_positive(self.rate_safety_factor, "rate_safety_factor")


class AtpRateStamper:
    """Per-node hook that stamps the minimum available rate into data headers.

    This is ATP's network support: unlike iJTP it does not touch loss
    tolerance, attempt counts or caches — it only collects the rate.
    """

    def __init__(self) -> None:
        self.packets_stamped = 0

    def pre_transmit(self, packet: object, context: LinkContext) -> bool:
        if isinstance(packet, Packet) and packet.is_data:
            effective = context.available_rate_pps / max(1.0, context.average_attempts)
            packet.available_rate_pps = min(packet.available_rate_pps, effective)
            self.packets_stamped += 1
        return True


class AtpSender:
    """Source endpoint: rate-paced sending, end-to-end retransmission only."""

    def __init__(
        self,
        node,
        flow_id: int,
        dst: int,
        transfer_bytes: float,
        config: AtpConfig,
        flow_stats: FlowStats,
        on_complete: Optional[Callable[[float], None]] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.flow_id = flow_id
        self.dst = dst
        self.config = config
        self.flow_stats = flow_stats
        self.on_complete = on_complete

        segments: List[float] = []
        remaining = transfer_bytes
        while remaining > 0:
            chunk = min(config.packet_size_bytes, remaining)
            segments.append(chunk)
            remaining -= chunk
        self._segments = segments
        self._pending_new: Deque[int] = deque(range(len(segments)))
        self._outstanding: Dict[int, float] = {}
        self._retransmit_queue: Deque[int] = deque()
        self._retransmit_set: Set[int] = set()

        self._rate_pps = config.initial_rate_pps
        self._send_event = None
        self._silence_event = None
        self._last_feedback: Optional[float] = None
        self.completed = False
        self.completion_time: Optional[float] = None

    @property
    def total_packets(self) -> int:
        return len(self._segments)

    @property
    def rate_pps(self) -> float:
        return self._rate_pps

    def start(self) -> None:
        self.flow_stats.start_time = self.sim.now
        self._schedule_send(0.0)
        self._silence_event = self.sim.schedule(3.0 * self.config.feedback_period, self._feedback_silence)

    def _schedule_send(self, delay: float) -> None:
        if self._send_event is not None:
            self._send_event.cancel()
        self._send_event = self.sim.schedule(delay, self._send_next)

    def _send_next(self) -> None:
        if self.completed:
            return
        seq = self._next_seq()
        if seq is None:
            self._maybe_complete()
            if not self.completed:
                self._schedule_send(max(0.5, 1.0 / self._rate_pps))
            return
        retransmission = seq in self._outstanding
        now = self.sim.now
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            packet_type=PacketType.DATA,
            src=self.node.node_id,
            dst=self.dst,
            payload_bytes=self._segments[seq],
            header_bytes=self.config.header_bytes,
            timestamp=now,
        )
        self._outstanding[seq] = self._segments[seq]
        self.node.send(packet)
        self.flow_stats.record_send(now, self._segments[seq], retransmission=retransmission)
        self._schedule_send(1.0 / self._rate_pps)

    def _next_seq(self) -> Optional[int]:
        while self._retransmit_queue:
            seq = self._retransmit_queue.popleft()
            self._retransmit_set.discard(seq)
            if seq in self._outstanding:
                return seq
        if self._pending_new:
            return self._pending_new.popleft()
        return None

    def on_packet(self, packet: Packet) -> None:
        if not packet.is_ack or packet.ack is None:
            return
        ack = packet.ack
        self._last_feedback = self.sim.now
        if ack.rate_pps > 0:
            self._rate_pps = clamp(
                self.config.rate_safety_factor * ack.rate_pps,
                self.config.min_rate_pps,
                self.config.max_rate_pps,
            )
        for seq in [s for s in self._outstanding if s <= ack.cumulative_ack]:
            del self._outstanding[seq]
        for seq in ack.snack:
            if seq in self._outstanding and seq not in self._retransmit_set:
                self._retransmit_queue.append(seq)
                self._retransmit_set.add(seq)
        self._maybe_complete()

    def _feedback_silence(self) -> None:
        """Halve the rate when the constant-rate feedback stream goes missing."""
        if self.completed:
            return
        now = self.sim.now
        reference = self._last_feedback if self._last_feedback is not None else self.flow_stats.start_time
        if reference is not None and now - reference > 3.0 * self.config.feedback_period:
            self._rate_pps = clamp(self._rate_pps * 0.5, self.config.min_rate_pps, self.config.max_rate_pps)
            self._last_feedback = now
        self._silence_event = self.sim.schedule(3.0 * self.config.feedback_period, self._feedback_silence)

    def _maybe_complete(self) -> None:
        if self.completed:
            return
        if self._pending_new or self._outstanding or self._retransmit_queue:
            return
        self.completed = True
        self.completion_time = self.sim.now
        self.flow_stats.completion_time = self.sim.now
        if self._send_event is not None:
            self._send_event.cancel()
        if self._silence_event is not None:
            self._silence_event.cancel()
        if self.on_complete is not None:
            self.on_complete(self.sim.now)


class AtpReceiver:
    """Destination endpoint: constant-period rate feedback, full reliability."""

    MAX_MISSING_REPORT = 64
    FINAL_FEEDBACKS = 2

    def __init__(
        self,
        node,
        flow_id: int,
        src: int,
        config: AtpConfig,
        flow_stats: FlowStats,
        total_packets: Optional[int] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.flow_id = flow_id
        self.src = src
        self.config = config
        self.flow_stats = flow_stats
        self.total_packets = total_packets
        self._received: Set[int] = set()
        self._highest = -1
        self._rate = EWMA(config.rate_alpha)
        self._last_timestamp = 0.0
        self._feedback_event = None
        self._started = False
        self._final_feedbacks_sent = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._feedback_event = self.sim.schedule(self.config.feedback_period, self._periodic_feedback)

    def on_packet(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        now = self.sim.now
        duplicate = packet.seq in self._received
        self.flow_stats.record_delivery(now, packet.payload_bytes, duplicate=duplicate)
        if not duplicate:
            self._received.add(packet.seq)
            self._highest = max(self._highest, packet.seq)
        if packet.available_rate_pps != float("inf"):
            self._rate.update(packet.available_rate_pps)
        self._last_timestamp = packet.timestamp

    def _cumulative_ack(self) -> int:
        cumulative = -1
        for seq in range(self._highest + 1):
            if seq in self._received:
                cumulative = seq
            else:
                break
        return cumulative

    def _is_complete(self) -> bool:
        return self.total_packets is not None and len(self._received) >= self.total_packets

    def _periodic_feedback(self) -> None:
        now = self.sim.now
        cumulative = self._cumulative_ack()
        if self._is_complete():
            # Everything has arrived: send a couple of final acknowledgments
            # so the sender can release its buffer, then go quiet.
            if self._final_feedbacks_sent >= self.FINAL_FEEDBACKS:
                return
            self._final_feedbacks_sent += 1
        missing = tuple(
            seq for seq in range(self._highest + 1) if seq not in self._received
        )[: self.MAX_MISSING_REPORT]
        ack = AckInfo(
            cumulative_ack=cumulative,
            snack=missing,
            locally_recovered=(),
            rate_pps=self._rate.value_or(self.config.initial_rate_pps),
            echo_timestamp=self._last_timestamp,
        )
        packet = Packet(
            flow_id=self.flow_id,
            seq=cumulative,
            packet_type=PacketType.ACK,
            src=self.node.node_id,
            dst=self.src,
            payload_bytes=0.0,
            header_bytes=self.config.ack_bytes,
            timestamp=now,
            ack=ack,
        )
        self.node.send(packet)
        self.flow_stats.record_ack(packet.size_bytes)
        self._feedback_event = self.sim.schedule(self.config.feedback_period, self._periodic_feedback)


class AtpProtocol(TransportProtocol):
    """The ATP-like baseline wrapped in the common interface."""

    name = "atp"

    def __init__(self, config: Optional[AtpConfig] = None):
        self.config = config or AtpConfig()
        self._stampers: Dict[int, AtpRateStamper] = {}

    def install(self, network: Network) -> None:
        """Install the rate-stamping hook on every node (idempotent)."""
        if getattr(network, "_atp_installed", False):
            return
        for node in network.nodes:
            stamper = AtpRateStamper()
            node.mac.pre_transmit_hooks.append(stamper.pre_transmit)
            self._stampers[node.node_id] = stamper
        network._atp_installed = True  # type: ignore[attr-defined]

    def create_flow(
        self,
        network: Network,
        src: int,
        dst: int,
        transfer_bytes: float,
        start_time: float = 0.0,
        flow_id: Optional[int] = None,
    ) -> FlowHandle:
        flow_id = flow_id if flow_id is not None else network.allocate_flow_id()
        flow_stats = FlowStats(flow_id, src, dst, transfer_bytes=transfer_bytes)
        network.stats.register_flow(flow_stats)
        sender = AtpSender(network.node(src), flow_id, dst, transfer_bytes, self.config, flow_stats)
        receiver = AtpReceiver(
            network.node(dst), flow_id, src, self.config, flow_stats,
            total_packets=sender.total_packets,
        )
        network.node(src).register_agent(flow_id, sender)
        network.node(dst).register_agent(flow_id, receiver)
        network.sim.schedule_at(max(start_time, network.sim.now), sender.start)
        network.sim.schedule_at(max(start_time, network.sim.now), receiver.start)
        return FlowHandle(flow_id=flow_id, src=src, dst=dst, protocol=self.name,
                          stats=flow_stats, sender=sender, receiver=receiver)
