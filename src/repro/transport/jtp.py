"""JTP wrapped in the common transport-protocol interface."""

from __future__ import annotations

from typing import Optional

from repro.core.config import JTPConfig
from repro.core.connection import JTPConnection, ensure_ijtp_installed
from repro.sim.network import Network
from repro.transport.base import FlowHandle, TransportProtocol


class JTPProtocol(TransportProtocol):
    """The paper's protocol: receiver-driven, cache-assisted, energy-conscious."""

    name = "jtp"

    def __init__(self, config: Optional[JTPConfig] = None):
        self.config = config or JTPConfig()

    def install(self, network: Network) -> None:
        """Install iJTP on every node (idempotent per network)."""
        ensure_ijtp_installed(network, self.config)

    def create_flow(
        self,
        network: Network,
        src: int,
        dst: int,
        transfer_bytes: float,
        start_time: float = 0.0,
        flow_id: Optional[int] = None,
    ) -> FlowHandle:
        connection = JTPConnection(
            network,
            src,
            dst,
            transfer_bytes,
            config=self.config,
            flow_id=flow_id,
            start_time=start_time,
        )
        return FlowHandle(
            flow_id=connection.flow_id,
            src=src,
            dst=dst,
            protocol=self.name,
            stats=connection.flow_stats,
            sender=connection.sender,
            receiver=connection.receiver,
        )

    def describe(self) -> str:
        return f"jtp(loss_tolerance={self.config.loss_tolerance:.0%})"
