"""Protocol registry.

Experiments name protocols by short strings ("jtp", "jtp10", "jnc",
"tcp", "atp", "udp"); the registry turns those names into configured
:class:`~repro.transport.base.TransportProtocol` instances.  The
``jtpNN`` shorthand creates a JTP protocol with NN percent loss
tolerance, matching the paper's jtp0/jtp10/jtp20 labels.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.config import JTPConfig
from repro.transport.atp import AtpConfig, AtpProtocol
from repro.transport.base import TransportProtocol
from repro.transport.jnc import JNCProtocol
from repro.transport.jtp import JTPProtocol
from repro.transport.tcp_sack import TcpConfig, TcpSackProtocol
from repro.transport.udp import UdpConfig, UdpProtocol

_JTP_WITH_TOLERANCE = re.compile(r"^(jtp|jnc)(\d{1,2})$")


def available_protocols() -> List[str]:
    """The protocol names the registry understands."""
    return ["jtp", "jtp10", "jtp20", "jnc", "tcp", "atp", "udp"]


def make_protocol(name: str, config: Optional[object] = None) -> TransportProtocol:
    """Build a protocol instance from a short name.

    ``config`` may be a :class:`JTPConfig`, :class:`TcpConfig`,
    :class:`AtpConfig` or :class:`UdpConfig` matching the protocol; when
    omitted, defaults are used.
    """
    key = name.strip().lower()

    match = _JTP_WITH_TOLERANCE.match(key)
    if match:
        base, percent = match.group(1), int(match.group(2))
        jtp_config = (config if isinstance(config, JTPConfig) else JTPConfig()).variant(
            loss_tolerance=percent / 100.0
        )
        return JNCProtocol(jtp_config) if base == "jnc" else JTPProtocol(jtp_config)

    if key == "jtp":
        return JTPProtocol(config if isinstance(config, JTPConfig) else None)
    if key == "jnc":
        return JNCProtocol(config if isinstance(config, JTPConfig) else None)
    if key == "tcp":
        return TcpSackProtocol(config if isinstance(config, TcpConfig) else None)
    if key == "atp":
        return AtpProtocol(config if isinstance(config, AtpConfig) else None)
    if key == "udp":
        return UdpProtocol(config if isinstance(config, UdpConfig) else None)
    raise ValueError(f"unknown protocol {name!r}; known: {available_protocols()}")
