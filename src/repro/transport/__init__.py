"""Transport protocols: JTP plus the paper's comparison baselines.

Every protocol is wrapped in a :class:`~repro.transport.base.TransportProtocol`
object with two responsibilities — install any per-node modules on a
network, and create flows between node pairs — so the experiment
harness can swap protocols without knowing anything about their
internals.  The protocols provided are:

* ``jtp``   — the paper's contribution (Sections 2-5),
* ``jnc``   — JTP with in-network caching disabled (Section 4.1),
* ``tcp``   — a rate-based TCP-SACK: sending rate from the Padhye
  throughput equation, delayed ACKs, SACK-based loss recovery,
* ``atp``   — an ATP-like protocol: explicit rate feedback collected by
  intermediate nodes, constant-rate receiver feedback, end-to-end-only
  recovery,
* ``udp``   — an unreliable constant-rate sender.
"""

from repro.transport.base import FlowHandle, TransportProtocol
from repro.transport.jtp import JTPProtocol
from repro.transport.jnc import JNCProtocol
from repro.transport.tcp_sack import TcpSackProtocol, TcpConfig
from repro.transport.atp import AtpProtocol, AtpConfig
from repro.transport.udp import UdpProtocol, UdpConfig
from repro.transport.registry import make_protocol, available_protocols

__all__ = [
    "FlowHandle",
    "TransportProtocol",
    "JTPProtocol",
    "JNCProtocol",
    "TcpSackProtocol",
    "TcpConfig",
    "AtpProtocol",
    "AtpConfig",
    "UdpProtocol",
    "UdpConfig",
    "make_protocol",
    "available_protocols",
]
