"""JNC — JTP with No Caching (the Section 4.1 comparison point).

JNC is exactly JTP except that no intermediate node caches packets, so
every loss that exhausts its link-layer attempts must be repaired by an
end-to-end retransmission from the source.  The analytic model of
Section 4.1 predicts its cost is a factor ``(1 - p^n)^-(H-1)`` higher
than JTP's, growing with path length; Figure 4 confirms this by
simulation and also shows JNC concentrates energy expenditure on the
nodes close to the source.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import JTPConfig
from repro.transport.jtp import JTPProtocol


class JNCProtocol(JTPProtocol):
    """JTP with in-network caching disabled."""

    name = "jnc"

    def __init__(self, config: Optional[JTPConfig] = None):
        base = config or JTPConfig()
        if base.caching_enabled:
            base = base.variant(caching_enabled=False)
        super().__init__(base)

    def describe(self) -> str:
        return f"jnc(loss_tolerance={self.config.loss_tolerance:.0%})"
