"""UDP-like unreliable constant-rate transport.

The Figure 5 fairness experiment pits a reliable JTP flow against a
flow that "does not request packet retransmissions (i.e. UDP-like
flow)".  This module provides that flow type: a sender that paces
datagrams at a fixed rate with no feedback channel at all, and a
receiver that merely counts what arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.core.packet import Packet, PacketType
from repro.sim.network import Network
from repro.sim.stats import FlowStats
from repro.transport.base import FlowHandle, TransportProtocol
from repro.util.validation import require_positive


@dataclass(frozen=True)
class UdpConfig:
    """Parameters of the UDP-like baseline."""

    packet_size_bytes: float = 800.0
    header_bytes: float = 28.0
    rate_pps: float = 2.0

    def __post_init__(self) -> None:
        require_positive(self.packet_size_bytes, "packet_size_bytes")
        require_positive(self.rate_pps, "rate_pps")


class UdpSender:
    """Constant-rate datagram source."""

    def __init__(
        self,
        node,
        flow_id: int,
        dst: int,
        transfer_bytes: float,
        config: UdpConfig,
        flow_stats: FlowStats,
        on_complete: Optional[Callable[[float], None]] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.flow_id = flow_id
        self.dst = dst
        self.config = config
        self.flow_stats = flow_stats
        self.on_complete = on_complete

        segments: List[float] = []
        remaining = transfer_bytes
        while remaining > 0:
            chunk = min(config.packet_size_bytes, remaining)
            segments.append(chunk)
            remaining -= chunk
        self._segments = segments
        self._next_seq = 0
        self._send_event = None
        self.completed = False
        self.completion_time: Optional[float] = None

    @property
    def total_packets(self) -> int:
        return len(self._segments)

    @property
    def rate_pps(self) -> float:
        return self.config.rate_pps

    def start(self) -> None:
        self.flow_stats.start_time = self.sim.now
        self._send_event = self.sim.schedule(0.0, self._send_next)

    def _send_next(self) -> None:
        if self._next_seq >= len(self._segments):
            self.completed = True
            self.completion_time = self.sim.now
            self.flow_stats.completion_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.sim.now)
            return
        now = self.sim.now
        seq = self._next_seq
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            packet_type=PacketType.DATA,
            src=self.node.node_id,
            dst=self.dst,
            payload_bytes=self._segments[seq],
            header_bytes=self.config.header_bytes,
            timestamp=now,
        )
        self.node.send(packet)
        self.flow_stats.record_send(now, self._segments[seq])
        self._next_seq += 1
        self._send_event = self.sim.schedule(1.0 / self.config.rate_pps, self._send_next)

    def on_packet(self, packet: Packet) -> None:
        """UDP has no feedback channel; anything arriving here is ignored."""


class UdpReceiver:
    """Counts delivered datagrams; never sends anything back."""

    def __init__(self, node, flow_id: int, src: int, flow_stats: FlowStats):
        self.node = node
        self.sim = node.sim
        self.flow_id = flow_id
        self.src = src
        self.flow_stats = flow_stats
        self._received: Set[int] = set()

    def start(self) -> None:
        """Nothing to schedule."""

    def on_packet(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        duplicate = packet.seq in self._received
        self.flow_stats.record_delivery(self.sim.now, packet.payload_bytes, duplicate=duplicate)
        if not duplicate:
            self._received.add(packet.seq)


class UdpProtocol(TransportProtocol):
    """The UDP-like baseline wrapped in the common interface."""

    name = "udp"

    def __init__(self, config: Optional[UdpConfig] = None):
        self.config = config or UdpConfig()

    def create_flow(
        self,
        network: Network,
        src: int,
        dst: int,
        transfer_bytes: float,
        start_time: float = 0.0,
        flow_id: Optional[int] = None,
    ) -> FlowHandle:
        flow_id = flow_id if flow_id is not None else network.allocate_flow_id()
        flow_stats = FlowStats(flow_id, src, dst, transfer_bytes=transfer_bytes)
        network.stats.register_flow(flow_stats)
        sender = UdpSender(network.node(src), flow_id, dst, transfer_bytes, self.config, flow_stats)
        receiver = UdpReceiver(network.node(dst), flow_id, src, flow_stats)
        network.node(src).register_agent(flow_id, sender)
        network.node(dst).register_agent(flow_id, receiver)
        network.sim.schedule_at(max(start_time, network.sim.now), sender.start)
        return FlowHandle(flow_id=flow_id, src=src, dst=dst, protocol=self.name,
                          stats=flow_stats, sender=sender, receiver=receiver)
