"""Spatial hash-grid index for range queries over node positions.

The channel answers "who can hear whom" queries constantly — every
neighbour-table refresh, every routing ground-truth check, every
``in_range`` guard on a transmission.  A brute-force scan is O(n) per
node (O(n²) per snapshot); the :class:`SpatialGrid` buckets nodes into
square cells of side ``radio_range`` so a range query only inspects the
3x3 cell block around the querier, which contains every node within
``radio_range`` by construction (two points closer than one cell side
can differ by at most one cell index per axis).

The grid is *exact*, not approximate: cell membership only prunes
candidates, the caller still distance-filters them.  Updates are
incremental — :meth:`move` is a no-op unless the node crossed a cell
boundary — which is what makes per-step mobility updates cheap.

Determinism note: query helpers return candidate ids in ascending
order, so sets built from them have the same insertion order as the
historical brute-force scans (which iterated node ids in order).  Set
iteration order in CPython can depend on insertion history, and
downstream consumers (Dijkstra relaxation, view copies) iterate those
sets — keeping the order identical keeps experiment streams
bit-identical with the pre-index code.
"""

from __future__ import annotations

from math import floor
from typing import Any, Dict, List, Protocol, Sequence, Set, Tuple

Cell = Tuple[int, int]


class SupportsPosition(Protocol):
    """What a ``positions`` item must expose (structurally matches
    :class:`repro.sim.topology.Position` without importing it — topology
    imports this module, not the other way round)."""

    @property
    def x(self) -> float: ...

    @property
    def y(self) -> float: ...

    def distance_to(self, other: Any) -> float: ...


class SpatialGrid:
    """An exact hash-grid index over 2-D points with integer ids.

    ``cell_size`` must be at least the largest query radius that will be
    used (the channel uses ``radio_range``); :meth:`near` only scans the
    3x3 block around the query point.
    """

    __slots__ = ("cell_size", "_cells", "_cell_of")

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._cells: Dict[Cell, Set[int]] = {}
        self._cell_of: Dict[int, Cell] = {}

    def __len__(self) -> int:
        return len(self._cell_of)

    def _cell(self, x: float, y: float) -> Cell:
        size = self.cell_size
        return (int(floor(x / size)), int(floor(y / size)))

    def insert(self, node_id: int, x: float, y: float) -> None:
        """Add (or re-add) a node at ``(x, y)``."""
        if node_id in self._cell_of:
            self.move(node_id, x, y)
            return
        cell = self._cell(x, y)
        self._cell_of[node_id] = cell
        bucket = self._cells.get(cell)
        if bucket is None:
            self._cells[cell] = {node_id}
        else:
            bucket.add(node_id)

    def move(self, node_id: int, x: float, y: float) -> bool:
        """Update a node's position; returns True iff it changed cell.

        The common mobility step stays inside one cell, making this a
        two-dict-lookup no-op.
        """
        new_cell = self._cell(x, y)
        old_cell = self._cell_of[node_id]
        if new_cell == old_cell:
            return False
        old_bucket = self._cells[old_cell]
        old_bucket.discard(node_id)
        if not old_bucket:
            del self._cells[old_cell]
        bucket = self._cells.get(new_cell)
        if bucket is None:
            self._cells[new_cell] = {node_id}
        else:
            bucket.add(node_id)
        self._cell_of[node_id] = new_cell
        return True

    def remove(self, node_id: int) -> None:
        """Drop a node from the index."""
        cell = self._cell_of.pop(node_id)
        bucket = self._cells[cell]
        bucket.discard(node_id)
        if not bucket:
            del self._cells[cell]

    def near(self, x: float, y: float) -> List[int]:
        """Candidate node ids within one cell of ``(x, y)``, ascending.

        A superset of every node within ``cell_size`` of the point
        (including any node exactly *at* that distance); the caller
        applies the exact distance filter.
        """
        cells = self._cells
        cx, cy = self._cell(x, y)
        candidates: List[int] = []
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                bucket = cells.get((gx, gy))
                if bucket:
                    candidates.extend(bucket)
        candidates.sort()
        return candidates

    def neighbors_within(self, node_id: int, positions: Sequence[SupportsPosition], radius: float) -> Set[int]:
        """Exact neighbour set of ``node_id``: every other node whose
        position is within ``radius`` (inclusive).

        ``positions`` is indexed by node id and its items expose
        ``x``/``y``/``distance_to`` (:class:`repro.sim.topology.Position`);
        ``radius`` must not exceed ``cell_size``.  This is the single
        home of the determinism-critical construction: candidates are
        scanned in ascending id order and matches inserted in that
        order, reproducing the historical brute-force scan's set
        insertion sequence exactly (set iteration order — which
        downstream consumers rely on for bit-identical seeded runs —
        follows from it).
        """
        position = positions[node_id]
        result: Set[int] = set()
        for other in self.near(position.x, position.y):
            if other != node_id and positions[other].distance_to(position) <= radius:
                result.add(other)
        return result
