"""Node mobility models.

Figure 11 of the paper evaluates JTP in a mobile 15-node network using
the **random waypoint** model: each node picks a random direction,
moves an average distance of 47 m at a fixed speed (0.1, 1 or 5 m/s),
then pauses for an average of 100 s before moving again.  This module
reproduces that model, plus a trivial static model so that every
scenario can be expressed uniformly.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.topology import Position
from repro.util.validation import require_non_negative, require_positive


class StaticMobility:
    """No movement at all; provided so scenarios share a single interface."""

    def start(self, sim: Simulator) -> None:
        """Nothing to schedule for static nodes."""

    def describe(self) -> str:
        return "static"


class RandomWaypointMobility:
    """Random-waypoint movement with pauses, as in the paper's Section 6.1.2.

    Parameters
    ----------
    channel:
        The channel whose node positions are updated as nodes move.
    speed:
        Node speed in metres per second (paper: 0.1, 1, 5 m/s).
    mean_leg_distance:
        Average distance of one movement leg (paper: 47 m).
    mean_pause:
        Average pause between movements (paper: 100 s).
    field_size:
        Side of the square field; destinations are clipped to it.
    update_interval:
        How often positions are advanced along the current leg.  Smaller
        values give smoother trajectories at higher event cost.
    on_topology_change:
        Optional callback invoked after every position update so the
        routing protocol can refresh its views.
    """

    def __init__(
        self,
        channel: Channel,
        rng: random.Random,
        speed: float = 1.0,
        mean_leg_distance: float = 47.0,
        mean_pause: float = 100.0,
        field_size: float = 200.0,
        update_interval: float = 1.0,
        on_topology_change: Optional[Callable[[], None]] = None,
    ):
        self.channel = channel
        self._rng = rng
        self.speed = require_positive(speed, "speed")
        self.mean_leg_distance = require_positive(mean_leg_distance, "mean_leg_distance")
        self.mean_pause = require_non_negative(mean_pause, "mean_pause")
        self.field_size = require_positive(field_size, "field_size")
        self.update_interval = require_positive(update_interval, "update_interval")
        self.on_topology_change = on_topology_change
        self._targets: List[Optional[Position]] = [None] * channel.num_nodes
        self._sim: Optional[Simulator] = None

    def describe(self) -> str:
        return f"random-waypoint(speed={self.speed} m/s)"

    def start(self, sim: Simulator) -> None:
        """Schedule the first movement of every node."""
        self._sim = sim
        for node_id in range(self.channel.num_nodes):
            sim.schedule(self._sample_pause(), self._begin_leg, node_id)

    # -- internal ----------------------------------------------------------------

    def _sample_pause(self) -> float:
        if self.mean_pause == 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.mean_pause)

    def _sample_leg_distance(self) -> float:
        return self._rng.expovariate(1.0 / self.mean_leg_distance)

    def _clip(self, value: float) -> float:
        return max(0.0, min(self.field_size, value))

    def _begin_leg(self, node_id: int) -> None:
        assert self._sim is not None
        origin = self.channel.position_of(node_id)
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        distance = self._sample_leg_distance()
        target = Position(
            self._clip(origin.x + distance * math.cos(angle)),
            self._clip(origin.y + distance * math.sin(angle)),
        )
        self._targets[node_id] = target
        self._sim.schedule(self.update_interval, self._step, node_id)

    def _step(self, node_id: int) -> None:
        sim = self._sim
        assert sim is not None
        target = self._targets[node_id]
        if target is None:
            return
        current = self.channel.position_of(node_id)
        new_position = current.moved_towards(target, self.speed * self.update_interval)
        # The channel updates its spatial index incrementally (a no-op
        # unless the node crossed a grid cell), so per-step position
        # updates stay O(1) regardless of network size.
        self.channel.set_position(node_id, new_position)
        if self.on_topology_change is not None:
            self.on_topology_change()
        if new_position is target or new_position == target:
            self._targets[node_id] = None
            sim.schedule(self._sample_pause(), self._begin_leg, node_id)
        else:
            sim.schedule(self.update_interval, self._step, node_id)
