"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Heap
entries are ``(time, sequence, event)`` triples — comparisons therefore
never leave C code (floats, then the monotonically growing sequence
number, which also guarantees deterministic FIFO ordering of
simultaneous events and makes every experiment repeatable from a seed).

Hot-path design notes:

* **Zero-arg fast path** — the dominant callback shape in the
  simulation stack is a bound method with no arguments (timers,
  service-loop continuations).  :class:`Event` stores ``None`` instead
  of empty ``args``/``kwargs`` containers and the run loop dispatches
  ``callback()`` directly, skipping the star-unpacking call machinery.
* **Hoisted run loop** — the queue, ``heappop`` and the clock live in
  locals inside :meth:`Simulator.run`; the clock attribute is only
  written when the event timestamp actually advances (simultaneous
  events share one store — "monotonic-time batching").
* **Lazy-cancel heap compaction** — :meth:`Event.cancel` only marks the
  event; dead entries are dropped when popped.  A cancelled counter
  triggers an in-place compaction once dead events dominate the heap,
  so long runs with churny timers (superseded retransmission timers,
  preempted feedback) stop bloating the heap.  Compaction never changes
  the order in which live events fire.

Profiling (events/sec, per-callback attribution, heap high-water mark)
lives in :mod:`repro.sim.profile`; when a profiler is active the run
loop is swapped for an instrumented twin with identical semantics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

#: The active core profiler, installed by :func:`repro.sim.profile.enable`
#: (and cleared by ``disable``).  The engine only reads it — once per
#: :meth:`Simulator.run` call, never per event — so idle profiling costs
#: nothing on the hot path.  Kept here rather than in the profile module
#: so the engine has no imports from the rest of the package.
_ACTIVE_PROFILER: Optional[Any] = None

#: ``delay`` values this close below zero are treated as "now": they are
#: float round-off from ``deadline - now`` computations in callers, not
#: attempts to schedule in the past.
NEGATIVE_DELAY_TOLERANCE = 1e-9

#: Compaction triggers once more than this many cancelled events sit in
#: the heap *and* they outnumber the live ones (see ``_note_cancel``).
COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` so that the
    caller can cancel them later (timers that get superseded, feedback
    that is preempted by an early trigger, and so on).

    ``args``/``kwargs`` are ``None`` — not empty containers — for the
    common zero-argument case, which is what the run loop's fast path
    keys on.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Optional[Tuple[Any, ...]] = None,
        kwargs: Optional[Dict[str, Any]] = None,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args or None
        self.kwargs = kwargs or None
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes.

        Safe to call at any point — before the event fires, after it
        fired (the common ``self._timer.cancel()`` in a callback that
        re-arms itself; a no-op), or repeatedly.  Only the first cancel
        of a still-queued event is counted towards compaction (the
        engine detaches ``_sim`` when the event leaves the heap).
        """
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {getattr(self.callback, '__name__', self.callback)}>"


#: Heap entry shape: ``(time, seq, event)``.
_Entry = Tuple[float, int, Event]


class Simulator:
    """The simulation clock and event queue.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, node.wake_up)
        sim.run(until=2500.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have been executed.

        Updated when :meth:`run` returns (or re-enters the scheduler at
        a nested :meth:`schedule` call), not after every single event —
        read it between runs, not from inside a callback.
        """
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of entries in the queue, **including** cancelled events
        that have not been popped or compacted away yet.

        This is the heap's physical size (what memory usage tracks); use
        :attr:`live_events` for the number of events that will actually
        fire.
        """
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire (cancelled
        events awaiting lazy removal are excluded)."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def heap_compactions(self) -> int:
        """How many times the lazy-cancel compaction has rebuilt the heap."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Tiny negative delays (>-1e-9) are clamped to zero: they are
        round-off from ``deadline - now`` subtractions, not scheduling
        in the past.
        """
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_TOLERANCE:
                raise ValueError(f"cannot schedule an event in the past (delay={delay})")
            delay = 0.0
        # Inline twin of Event.__init__ (this is the hottest allocation
        # site in the repository; skipping the constructor frame is a
        # measurable win — keep the two in sync).
        event = Event.__new__(Event)
        time = event.time = self._now + delay
        seq = event.seq = next(self._seq)
        event.callback = callback
        event.args = args or None
        event.kwargs = kwargs or None
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run at absolute simulation time ``time``.

        Times a hair before ``now`` — the absolute tolerance plus a few
        ULPs of the clock, i.e. genuine ``now + delay`` round-off, never
        real deadline-arithmetic bugs — are clamped to ``now``.
        """
        now = self._now
        if time < now:
            if now - time > NEGATIVE_DELAY_TOLERANCE + now * 4e-16:
                raise ValueError(f"cannot schedule at {time} which is before now={now}")
            time = now
        # Inline twin of Event.__init__ — see schedule().
        event = Event.__new__(Event)
        event.time = time
        seq = event.seq = next(self._seq)
        event.callback = callback
        event.args = args or None
        event.kwargs = kwargs or None
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # -- lazy-cancel bookkeeping -----------------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel`; triggers compaction when dead
        events dominate the heap."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue > COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: the run loop holds a local reference to the
        queue list, and cancellations happen from inside callbacks.
        Live events keep their ``(time, seq)`` keys, so their relative
        order is untouched.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled_in_queue = 0
        self._compactions += 1

    # -- run loop --------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        Returns the number of events processed by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run, so that rate meters read a consistent "end
        of experiment" time — but only when no pending event remains
        before ``until``.  If the loop stopped on ``max_events`` (or
        :meth:`stop`) with earlier events still queued, fast-forwarding
        would let a subsequent :meth:`run` pop those events with
        ``event.time < now`` and move the clock backwards, so the clock
        is left at the last executed event instead.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        profiler = _ACTIVE_PROFILER
        if profiler is not None:
            return self._run_profiled(until, max_events, profiler)
        processed = 0
        # Hoisted locals: the loop below is the hottest code in the
        # repository — every attribute lookup in it is paid per event.
        queue = self._queue
        pop = heapq.heappop
        now = self._now
        bound = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        try:
            while queue and not self._stopped:
                entry = queue[0]
                time = entry[0]
                if time > bound:
                    break
                pop(queue)
                event = entry[2]
                # Detach: the event is out of the heap, so a later
                # cancel() (a callback cancelling its own fired timer)
                # must not count towards the compaction trigger.
                event._sim = None
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                if time != now:
                    now = time
                    self._now = time
                args = event.args
                if args is None:
                    kwargs = event.kwargs
                    if kwargs is None:
                        event.callback()
                    else:
                        event.callback(**kwargs)
                elif event.kwargs is None:
                    event.callback(*args)
                else:
                    event.callback(*args, **event.kwargs)
                processed += 1
                if processed >= limit:
                    break
            if (
                until is not None
                and self._now < until
                and not self._stopped
                and (not queue or queue[0][0] >= until)
            ):
                self._now = until
        finally:
            self._events_processed += processed
            self._running = False
        return processed

    def _run_profiled(self, until: Optional[float], max_events: Optional[int], profiler: Any) -> int:
        """The instrumented twin of :meth:`run` (identical semantics).

        Wraps every callback with a wall-clock measurement attributed to
        the callback's qualified name and tracks the heap high-water
        mark.  The queue only grows *during* a callback (pops happen
        between callbacks), so sampling ``len(queue)`` after each
        callback observes every peak exactly.
        """
        import time as _time

        perf_counter = _time.perf_counter  # repro: allow[DET001] wall-clock feeds the profiler report only, never simulation state
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        now = self._now
        bound = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        compactions_before = self._compactions
        started = perf_counter()
        try:
            while queue and not self._stopped:
                entry = queue[0]
                time = entry[0]
                if time > bound:
                    break
                pop(queue)
                event = entry[2]
                event._sim = None
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                if time != now:
                    now = time
                    self._now = time
                callback = event.callback
                t0 = perf_counter()
                if event.args is None and event.kwargs is None:
                    callback()
                else:
                    callback(*(event.args or ()), **(event.kwargs or {}))
                elapsed = perf_counter() - t0
                profiler.record_callback(callback, elapsed)
                if len(queue) > profiler.heap_high_water:
                    profiler.heap_high_water = len(queue)
                processed += 1
                if processed >= limit:
                    break
            if (
                until is not None
                and self._now < until
                and not self._stopped
                and (not queue or queue[0][0] >= until)
            ):
                self._now = until
        finally:
            self._events_processed += processed
            self._running = False
            profiler.record_run(
                processed, perf_counter() - started, self._compactions - compactions_before
            )
        return processed

    def run_until_empty(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(until=None, max_events=max_events)
