"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events
are ``(time, sequence, callback)`` triples; the monotonically growing
sequence number guarantees deterministic FIFO ordering of simultaneous
events, which in turn makes every experiment in the reproduction
repeatable from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` so that the
    caller can cancel them later (timers that get superseded, feedback
    that is preempted by an early trigger, and so on).
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple, kwargs: dict):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {getattr(self.callback, '__name__', self.callback)}>"


class Simulator:
    """The simulation clock and event queue.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, node.wake_up)
        sim.run(until=2500.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have been executed."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} which is before now={self._now}")
        event = Event(time, next(self._seq), callback, args, kwargs)
        heapq.heappush(self._queue, event)
        return event

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        Returns the number of events processed by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run, so that rate meters read a consistent "end
        of experiment" time — but only when no pending event remains
        before ``until``.  If the loop stopped on ``max_events`` (or
        :meth:`stop`) with earlier events still queued, fast-forwarding
        would let a subsequent :meth:`run` pop those events with
        ``event.time < now`` and move the clock backwards, so the clock
        is left at the last executed event instead.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args, **event.kwargs)
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if (
                until is not None
                and self._now < until
                and not self._stopped
                and (not self._queue or self._queue[0].time >= until)
            ):
                self._now = until
        finally:
            self._running = False
        return processed

    def run_until_empty(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(until=None, max_events=max_events)
