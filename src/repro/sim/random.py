"""Named, independently seeded random streams.

A single master seed deterministically derives one :class:`random.Random`
instance per named stream ("channel", "mobility", "workload", ...).
Keeping the streams separate means, for example, that changing the
transport protocol under test does not perturb the link loss process —
the paper's evaluation makes the same point ("we ensured that all the
protocols run under the same conditions in the same run").
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory for named, reproducible random number generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            derived = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def spawn(self, offset: int) -> "RandomStreams":
        """Derive an independent :class:`RandomStreams` (for replicated runs)."""
        return RandomStreams(self.seed * 1_000_003 + offset)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
