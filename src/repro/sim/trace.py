"""Lightweight event tracing.

Some of the paper's figures are time series of internal protocol state
rather than end-of-run aggregates — for example Figure 3(c) plots the
maximum number of link-layer retransmissions chosen by iJTP at the
third node over time, and Figure 8 plots the flip-flop monitor's
reported and averaged available rate.  The :class:`TraceRecorder` lets
any component emit typed trace events without knowing what the
experiment will later do with them; recording is off by default so
ordinary runs pay no cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

#: Sentinel distinguishing "field absent" from "field holds None" in
#: :meth:`TraceRecorder.events` filters — an event that lacks a filtered
#: field never matches, whatever the filter value.
_MISSING = object()


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a type tag, a timestamp and free-form fields."""

    kind: str
    time: float
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects when enabled."""

    def __init__(self, enabled: bool = False, kinds: Optional[Iterable[str]] = None):
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self._events: List[TraceEvent] = []

    def record(self, kind: str, time: float, **fields: Any) -> None:
        """Record an event if tracing is enabled (and the kind is selected)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._events.append(TraceEvent(kind=kind, time=time, fields=dict(fields)))

    def events(self, kind: Optional[str] = None, **filters: Any) -> List[TraceEvent]:
        """All recorded events, optionally filtered by kind and field values.

        A filter only matches events that *have* the field with the given
        value; events lacking the field are always excluded (so filtering
        on ``value=None`` selects events whose field is ``None``, not
        events without the field).
        """
        result = self._events
        if kind is not None:
            result = [e for e in result if e.kind == kind]
        for key, value in filters.items():
            result = [e for e in result if e.fields.get(key, _MISSING) == value]
        return list(result)

    def series(self, kind: str, value_field: str, **filters: Any) -> List[tuple]:
        """Return ``(time, value)`` pairs for a given event kind and field."""
        return [(e.time, e[value_field]) for e in self.events(kind, **filters)]

    def clear(self) -> None:
        """Discard all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
