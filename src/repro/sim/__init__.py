"""Discrete-event wireless network simulator.

This package is the reproduction's substitute for the OPNET simulation
environment used in the paper.  It provides:

* :mod:`repro.sim.engine` — the event scheduler and simulation clock,
* :mod:`repro.sim.random` — named, independently seeded random streams,
* :mod:`repro.sim.topology` — linear / grid / random node placements,
* :mod:`repro.sim.spatial` — the hash-grid neighbour index behind the
  channel's connectivity queries,
* :mod:`repro.sim.channel` — distance-based connectivity with a
  Gilbert–Elliott good/bad loss process per link,
* :mod:`repro.sim.faults` — the deterministic fault-injection engine:
  declarative :class:`FaultPlan` schedules (node crash/recover churn,
  link outages, partitions, regime blackouts) applied as first-class
  simulator events,
* :mod:`repro.sim.profile` — opt-in events/sec and per-callback
  profiling of the engine's run loop,
* :mod:`repro.sim.mobility` — the random-waypoint mobility model,
* :mod:`repro.sim.queue` — drop-tail packet queues,
* :mod:`repro.sim.node` / :mod:`repro.sim.network` — the layered node
  model and the network builder,
* :mod:`repro.sim.stats` — energy, goodput and drop accounting,
* :mod:`repro.sim.trace` — optional event tracing for time-series plots.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.random import RandomStreams
from repro.sim.channel import Channel, GilbertElliottLink, LinkQuality
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan, FaultProcess
from repro.sim.profile import CoreProfiler, profiled
from repro.sim.spatial import SpatialGrid
from repro.sim.topology import (
    Position,
    linear_positions,
    grid_positions,
    random_positions,
    connectivity_graph,
    is_connected,
)
from repro.sim.mobility import RandomWaypointMobility, StaticMobility
from repro.sim.queue import DropTailQueue
from repro.sim.node import Node
from repro.sim.network import Network, NetworkConfig
from repro.sim.stats import EnergyMeter, FlowStats, NetworkStats
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Event",
    "Simulator",
    "RandomStreams",
    "Channel",
    "CoreProfiler",
    "GilbertElliottLink",
    "LinkQuality",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultProcess",
    "SpatialGrid",
    "profiled",
    "Position",
    "linear_positions",
    "grid_positions",
    "random_positions",
    "connectivity_graph",
    "is_connected",
    "RandomWaypointMobility",
    "StaticMobility",
    "DropTailQueue",
    "Node",
    "Network",
    "NetworkConfig",
    "EnergyMeter",
    "FlowStats",
    "NetworkStats",
    "TraceRecorder",
    "TraceEvent",
]
