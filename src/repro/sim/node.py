"""The layered node model.

A node owns a MAC instance, shares the network-wide routing service and
hosts zero or more transport agents (JTP senders/receivers or baseline
protocol endpoints).  Packets move through a node as follows:

* a local transport agent calls :meth:`Node.send`, which consults the
  routing service for the next hop and enqueues the packet at the MAC;
* the MAC delivers received frames back to the node, which either hands
  them to the local transport agent for the packet's flow (if this node
  is the destination) or forwards them by calling :meth:`send` again;
* MAC-level drops (queue overflow, attempt exhaustion, hook drops) are
  reported back so that per-flow drop counters stay accurate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Protocol

from repro.routing.link_state import LinkStateRouting
from repro.sim.engine import Simulator
from repro.sim.stats import NetworkStats
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # imported for annotations only, to avoid a sim <-> mac import cycle
    from repro.mac.tdma import TdmaMac


class TransportAgent(Protocol):
    """The minimal interface a transport endpoint must expose to its node."""

    def on_packet(self, packet: object) -> None:
        """Handle a packet whose destination is this node and flow."""


class Node:
    """One wireless node: MAC + routing client + transport agents."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        mac: "TdmaMac",
        routing: LinkStateRouting,
        stats: NetworkStats,
        trace: Optional[TraceRecorder] = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.mac = mac
        self.routing = routing
        self.stats = stats
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._agents: Dict[int, TransportAgent] = {}
        self.orphan_packets = 0

        mac.deliver_upstream = self._on_mac_receive
        mac.on_packet_dropped = self._on_mac_drop
        mac.remaining_hops_fn = self._remaining_hops  # type: ignore[attr-defined]

    # -- agent registry -----------------------------------------------------------------

    def register_agent(self, flow_id: int, agent: TransportAgent) -> None:
        """Attach the local endpoint of flow ``flow_id`` to this node."""
        if flow_id in self._agents:
            raise ValueError(f"node {self.node_id} already has an agent for flow {flow_id}")
        self._agents[flow_id] = agent

    def unregister_agent(self, flow_id: int) -> None:
        """Detach the endpoint of ``flow_id`` (e.g. when a transfer finishes)."""
        self._agents.pop(flow_id, None)

    def agent_for(self, flow_id: int) -> Optional[TransportAgent]:
        return self._agents.get(flow_id)

    # -- data path ----------------------------------------------------------------------

    def send(self, packet: object) -> bool:
        """Originate or forward ``packet`` towards its destination.

        Returns True if the packet was accepted by the MAC queue (or
        delivered locally), False if it was dropped for lack of a route
        or a full queue.
        """
        try:
            dst = packet.dst
        except AttributeError:
            raise AttributeError("packets must expose a 'dst' attribute") from None
        if dst is None:
            raise AttributeError("packets must expose a 'dst' attribute")
        if dst == self.node_id:
            self.deliver_local(packet)
            return True
        next_hop = self.routing.next_hop(self.node_id, dst)
        if next_hop is None:
            self.stats.record_routing_drop()
            self._count_flow_drop(packet)
            if self.trace.enabled:
                self.trace.record("routing_drop", self.sim.now, node=self.node_id,
                                  flow=getattr(packet, "flow_id", -1), dst=dst)
            return False
        return self.mac.enqueue(packet, next_hop)

    def _on_mac_receive(self, packet: object, from_node: int) -> None:
        try:
            hops = packet.hops_travelled  # type: ignore[attr-defined]
        except AttributeError:
            pass
        else:
            packet.hops_travelled = hops + 1  # type: ignore[attr-defined]
        if getattr(packet, "dst", None) == self.node_id:
            self.deliver_local(packet)
        else:
            self.send(packet)

    def deliver_local(self, packet: object) -> None:
        """Hand a packet destined for this node to its transport agent."""
        flow_id = getattr(packet, "flow_id", None)
        agent = self._agents.get(flow_id) if flow_id is not None else None
        if agent is None:
            self.orphan_packets += 1
            self.trace.record("orphan_packet", self.sim.now, node=self.node_id, flow=flow_id)
            return
        agent.on_packet(packet)

    # -- fault lifecycle --------------------------------------------------------------------

    def on_crash(self) -> None:
        """Crash teardown: the MAC queue, estimators and radio die with the node.

        Transport agents stay registered — they model application state
        that survives a reboot; all in-network soft state (queued
        frames, link estimates, the iJTP cache, which the injector
        tears down separately) is lost.
        """
        self.mac.deactivate(flush=True)

    def on_recover(self) -> None:
        """Bring a crashed node back up with empty soft state."""
        self.mac.reactivate()

    def on_pause(self) -> None:
        """Pause the node: radio off, but queued frames and estimators survive."""
        self.mac.deactivate(flush=False)

    def on_resume(self) -> None:
        """Resume a paused node; queued frames continue where they stopped."""
        self.mac.reactivate()

    # -- drop accounting -------------------------------------------------------------------

    def _on_mac_drop(self, packet: object, reason: str) -> None:
        self._count_flow_drop(packet, reason)

    def _count_flow_drop(self, packet: object, reason: str = "no_route") -> None:
        flow_id = getattr(packet, "flow_id", None)
        flow = self.stats.flows.get(flow_id) if flow_id is not None else None
        if flow is None:
            return
        if reason == "energy_budget":
            flow.energy_budget_drops += 1
        else:
            flow.in_network_drops += 1

    def _remaining_hops(self, packet: object) -> Optional[int]:
        dst = getattr(packet, "dst", None)
        if dst is None:
            return None
        return self.routing.hops_to(self.node_id, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} agents={list(self._agents)}>"
