"""Lightweight simulation-core profiling.

Answers the three questions that matter for the events/sec trajectory:

* **how fast is the engine** — events processed per wall-clock second,
  aggregated across every :meth:`~repro.sim.engine.Simulator.run` call
  made while profiling is active;
* **where does the time go** — per-callback-class wall-clock
  attribution (keyed by the callback's qualified name, so all
  ``TdmaMac._attempt`` invocations across nodes pool into one row);
* **how big does the heap get** — the event-queue high-water mark and
  the number of lazy-cancel compactions, the memory side of the story.

Profiling is process-global and opt-in: :func:`enable` (or the
:func:`profiled` context manager) installs a :class:`CoreProfiler` into
the engine's hook, and every simulator created *or already running in
this process* reports into it.  The unprofiled run loop checks the hook
once per ``run()`` call, so leaving profiling off costs nothing per
event.  The instrumented loop wraps each callback with two
``perf_counter`` reads — expect roughly 2x wall-clock while active, on
unchanged simulation behaviour (profiling never touches RNG streams or
event order).

Two consumers are wired in:

* ``run_paper(profile=True)`` (or ``REPRO_PROFILE=1``) records the
  aggregated report in the run directory's manifest under
  ``core_profile`` — see ``docs/performance.md``;
* the benchmark drivers enable it under ``REPRO_PROFILE=1`` and print
  the uniform events/sec line via the bench conftest helper.

Note that worker *processes* of the process backend do not report into
the parent's profiler, and the counters are not synchronised, so the
thread backend's concurrent runs would race on them; profile with the
serial backend (``workers=0``) for complete, correct attribution.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim import engine as _engine

__all__ = [
    "CoreProfiler",
    "active",
    "disable",
    "enable",
    "profile_from_env",
    "profiled",
]


def callback_label(callback: Callable[..., Any]) -> str:
    """A stable, class-qualified label for a callback.

    Bound methods label as ``Class.method`` (``__qualname__``); bare
    functions as their qualified name; callables without one (partials,
    callable instances) as their type name.
    """
    label = getattr(callback, "__qualname__", None)
    if label is None:
        label = type(callback).__name__
    return label


class CoreProfiler:
    """Accumulates engine statistics across simulator runs.

    Attributes are plain counters so the instrumented loop can update
    them without function-call overhead; :meth:`report` condenses them
    into a JSON-serialisable dict.
    """

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0
        self.runs = 0
        self.heap_high_water = 0
        self.compactions = 0
        # label -> [count, total_seconds]
        self._by_callback: Dict[str, List[float]] = {}

    # -- recording hooks called by the instrumented run loop ----------------------

    def record_callback(self, callback: Callable[..., Any], elapsed: float) -> None:
        """Attribute ``elapsed`` seconds to ``callback``'s label."""
        label = callback_label(callback)
        entry = self._by_callback.get(label)
        if entry is None:
            self._by_callback[label] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    def record_run(self, events: int, wall_s: float, compactions: int) -> None:
        """Fold one finished ``Simulator.run`` call into the totals.

        ``compactions`` is the number of heap compactions *during this
        run* (the engine passes the delta), summed across every profiled
        run and simulator.
        """
        self.events += events
        self.wall_s += wall_s
        self.runs += 1
        self.compactions += compactions

    # -- reporting ----------------------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        """Aggregate engine throughput while profiled (0 if nothing ran)."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def by_callback(self) -> List[Dict[str, Any]]:
        """Per-callback rows, most expensive first."""
        total = sum(entry[1] for entry in self._by_callback.values()) or 1.0
        rows = [
            {
                "callback": label,
                "count": int(entry[0]),
                "total_s": round(entry[1], 6),
                "fraction": round(entry[1] / total, 4),
            }
            for label, entry in self._by_callback.items()
        ]
        rows.sort(key=lambda row: (-row["total_s"], row["callback"]))
        return rows

    def report(self, top: Optional[int] = None) -> Dict[str, Any]:
        """The full JSON-serialisable profile (optionally top-N callbacks)."""
        rows = self.by_callback()
        if top is not None:
            rows = rows[:top]
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "runs": self.runs,
            "heap_high_water": self.heap_high_water,
            "heap_compactions": self.compactions,
            "by_callback": rows,
        }

    def summary(self) -> str:
        """One grep-able line for logs and stderr."""
        return (
            f"core profile: {self.events:,} events in {self.wall_s:.3f} s "
            f"-> {self.events_per_sec:,.0f} events/s "
            f"(heap high-water {self.heap_high_water}, "
            f"{self.compactions} compactions)"
        )


def enable(profiler: Optional[CoreProfiler] = None) -> CoreProfiler:
    """Install ``profiler`` (or a fresh one) as the process-wide profiler.

    Every subsequent ``Simulator.run`` call in this process reports into
    it until :func:`disable`.  Returns the installed profiler.
    """
    if profiler is None:
        profiler = CoreProfiler()
    _engine._ACTIVE_PROFILER = profiler
    return profiler


def disable() -> None:
    """Stop profiling (no-op when not profiling)."""
    _engine._ACTIVE_PROFILER = None


def active() -> Optional[CoreProfiler]:
    """The currently installed profiler, or ``None``."""
    return _engine._ACTIVE_PROFILER


@contextmanager
def profiled(profiler: Optional[CoreProfiler] = None) -> Iterator[CoreProfiler]:
    """Context manager: profile everything run inside the block.

    Restores the previously active profiler (if any) on exit, so blocks
    can nest without clobbering an outer profile.
    """
    previous = _engine._ACTIVE_PROFILER
    installed = enable(profiler)
    try:
        yield installed
    finally:
        _engine._ACTIVE_PROFILER = previous


def profile_from_env(default: bool = False) -> bool:
    """Whether ``REPRO_PROFILE`` asks for profiling (empty/unset = default)."""
    value = os.environ.get("REPRO_PROFILE", "").strip()
    if not value:
        return default
    return value not in ("0", "false", "no")
