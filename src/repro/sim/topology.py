"""Node placement and connectivity helpers.

The paper evaluates JTP on two classes of topology:

* **static linear topologies** of 2–10 nodes, used to isolate the
  effect of path length (Figures 3, 4, 6, 7, 9);
* **random topologies** of 10–25 nodes in a 2-D field sized so the
  network is connected with high probability, with and without
  random-waypoint mobility (Figures 10 and 11) and the 14-node
  testbed-like scenario (Table 2).

This module produces the node positions and the distance-based
connectivity graph that the channel, routing and mobility models share.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.util.validation import require_positive


@dataclass(frozen=True)
class Position:
    """A point in the 2-D simulation field (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved_towards(self, target: "Position", distance: float) -> "Position":
        """Return the point ``distance`` metres from here towards ``target``.

        If ``target`` is closer than ``distance`` the target itself is
        returned (used by the random-waypoint stepper).
        """
        total = self.distance_to(target)
        if total <= distance or total == 0.0:
            return target
        frac = distance / total
        return Position(self.x + (target.x - self.x) * frac, self.y + (target.y - self.y) * frac)


def linear_positions(num_nodes: int, spacing: float = 40.0) -> List[Position]:
    """Place ``num_nodes`` on a line, ``spacing`` metres apart.

    With a radio range slightly larger than ``spacing`` (but smaller
    than ``2 * spacing``) this yields the chain topologies of the
    paper's linear experiments, where every packet must traverse
    ``num_nodes - 1`` hops.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(spacing, "spacing")
    return [Position(i * spacing, 0.0) for i in range(num_nodes)]


def grid_positions(rows: int, cols: int, spacing: float = 40.0) -> List[Position]:
    """Place ``rows * cols`` nodes on a regular grid."""
    require_positive(rows, "rows")
    require_positive(cols, "cols")
    require_positive(spacing, "spacing")
    return [Position(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]


def field_size_for(num_nodes: int, radio_range: float, density: float = 4.0) -> float:
    """Side length of a square field keeping a random network connected.

    The paper sets the field size "to ensure that the network is
    connected with high probability".  A standard heuristic is to keep
    the expected number of neighbours per node around ``density`` times
    the critical value; here we size the field so each node covers
    roughly ``density / num_nodes`` of the field area.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(radio_range, "radio_range")
    require_positive(density, "density")
    area = num_nodes * math.pi * radio_range ** 2 / density
    return math.sqrt(area)


def random_positions(
    num_nodes: int,
    field_size: float,
    rng: random.Random,
    radio_range: float = 0.0,
    max_tries: int = 400,
) -> List[Position]:
    """Uniformly random positions in a ``field_size`` × ``field_size`` square.

    If ``radio_range`` is positive, the placement is re-sampled up to
    ``max_tries`` times until the resulting unit-disk graph is
    connected; the last sample is returned if no connected placement is
    found (callers that require connectivity should check explicitly).
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(field_size, "field_size")
    positions: List[Position] = []
    for _ in range(max_tries):
        positions = [
            Position(rng.uniform(0.0, field_size), rng.uniform(0.0, field_size))
            for _ in range(num_nodes)
        ]
        if radio_range <= 0:
            return positions
        if is_connected(connectivity_graph(positions, radio_range)):
            return positions
    return positions


#: Placements at least this large build their connectivity graph through
#: a spatial hash grid (O(n) cells scanned) instead of the O(n²) pair
#: scan.  Both paths produce sets with identical contents *and*
#: identical insertion order (ascending neighbour ids), so the choice is
#: invisible to callers and to seeded experiments.
GRID_THRESHOLD = 32


def connectivity_graph(positions: Sequence[Position], radio_range: float) -> Dict[int, Set[int]]:
    """Unit-disk connectivity: node ``i`` hears node ``j`` iff within range."""
    require_positive(radio_range, "radio_range")
    if len(positions) >= GRID_THRESHOLD:
        return _connectivity_graph_grid(positions, radio_range)
    graph: Dict[int, Set[int]] = {i: set() for i in range(len(positions))}
    for i in range(len(positions)):
        for j in range(i + 1, len(positions)):
            if positions[i].distance_to(positions[j]) <= radio_range:
                graph[i].add(j)
                graph[j].add(i)
    return graph


def _connectivity_graph_grid(positions: Sequence[Position], radio_range: float) -> Dict[int, Set[int]]:
    """Grid-accelerated twin of the pair scan above (identical output).

    ``SpatialGrid.neighbors_within`` builds each set in the insertion
    order of the brute-force loop (node ``k`` accumulates 0..k-1 first,
    then k+1.. in ascending pair order), so the two paths are
    indistinguishable to callers and to seeded experiments.
    """
    from repro.sim.spatial import SpatialGrid

    grid = SpatialGrid(radio_range)
    for node_id, position in enumerate(positions):
        grid.insert(node_id, position.x, position.y)
    return {
        node_id: grid.neighbors_within(node_id, positions, radio_range)
        for node_id in range(len(positions))
    }


def is_connected(graph: Dict[int, Set[int]]) -> bool:
    """True iff the undirected graph has a single connected component."""
    if not graph:
        return True
    start = next(iter(graph))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        # repro: allow[DET002] visit order cannot change the reachable-node count
        for neighbor in graph[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == len(graph)


def links_of(graph: Dict[int, Set[int]]) -> List[Tuple[int, int]]:
    """All directed links (u, v) of the connectivity graph."""
    return [(u, v) for u, neighbors in graph.items() for v in neighbors]
