"""Network assembly.

:class:`Network` wires the whole substrate together — simulator,
channel, MAC instances, routing, statistics and (optionally) mobility —
and exposes the handful of operations an experiment needs: build a
topology, install a transport protocol, run for a while, read the
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.routing.link_state import LinkStateRouting
from repro.sim.channel import Channel, LinkQuality
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.sim.random import RandomStreams
from repro.sim.stats import NetworkStats
from repro.sim.topology import (
    Position,
    field_size_for,
    linear_positions,
    random_positions,
)
from repro.sim.trace import TraceRecorder
from repro.util.validation import require_positive

if TYPE_CHECKING:  # imported for annotations only, to avoid a sim <-> mac import cycle
    from repro.mac.tdma import MacConfig, TdmaMac
    from repro.sim.faults import FaultInjector, FaultPlan


def _default_mac_config() -> "MacConfig":
    from repro.mac.tdma import MacConfig

    return MacConfig()


@dataclass
class NetworkConfig:
    """Everything needed to build a network substrate."""

    positions: Sequence[Position] = field(default_factory=list)
    radio_range: float = 50.0
    link_quality: LinkQuality = field(default_factory=LinkQuality)
    mac_config: "MacConfig" = field(default_factory=_default_mac_config)
    mac_type: str = "tdma"
    routing_update_period: float = 10.0
    neighbor_refresh_period: float = 5.0
    seed: int = 0
    trace_enabled: bool = False

    def __post_init__(self) -> None:
        require_positive(self.radio_range, "radio_range")
        if self.mac_type not in ("tdma", "csma"):
            raise ValueError(f"mac_type must be 'tdma' or 'csma', got {self.mac_type!r}")


class Network:
    """A fully wired simulated wireless network."""

    def __init__(self, config: NetworkConfig):
        if not config.positions:
            raise ValueError("NetworkConfig.positions must not be empty")
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.stats = NetworkStats()
        self.trace = TraceRecorder(enabled=config.trace_enabled)
        self.channel = Channel(
            config.positions,
            radio_range=config.radio_range,
            rng=self.streams.stream("channel"),
            default_quality=config.link_quality,
        )
        self.routing = LinkStateRouting(
            self.channel,
            self.sim,
            update_period=config.routing_update_period,
            neighbor_refresh_period=config.neighbor_refresh_period,
        )
        if config.mac_type == "csma":
            from repro.mac.csma import SharedMedium

            self._medium = SharedMedium()
        else:
            self._medium = None
        self.nodes: List[Node] = [self._build_node(i) for i in range(len(config.positions))]
        self.mobility = None
        self.fault_injector: Optional["FaultInjector"] = None
        self._started = False
        self._next_flow_id = 0

    # -- construction helpers -----------------------------------------------------------

    def _build_node(self, node_id: int) -> Node:
        from repro.mac.csma import CsmaMac
        from repro.mac.tdma import TdmaMac

        if self.config.mac_type == "csma":
            assert self._medium is not None
            mac: "TdmaMac" = CsmaMac(
                node_id,
                self.sim,
                self.channel,
                self.stats,
                medium=self._medium,
                config=self.config.mac_config,
                trace=self.trace,
                rng=self.streams.stream(f"csma-{node_id}"),
            )
        else:
            mac = TdmaMac(
                node_id,
                self.sim,
                self.channel,
                self.stats,
                config=self.config.mac_config,
                trace=self.trace,
            )
        mac.deliver_to_peer = self._deliver_to_peer
        return Node(node_id, self.sim, mac, self.routing, self.stats, trace=self.trace)

    def _deliver_to_peer(self, next_hop: int, packet: object, from_node: int) -> None:
        self.nodes[next_hop].mac.receive(packet, from_node)

    @classmethod
    def linear(
        cls,
        num_nodes: int,
        spacing: float = 40.0,
        radio_range: float = 50.0,
        link_quality: Optional[LinkQuality] = None,
        mac_config: Optional["MacConfig"] = None,
        seed: int = 0,
        trace_enabled: bool = False,
        mac_type: str = "tdma",
    ) -> "Network":
        """A chain of ``num_nodes`` nodes, each hearing only its neighbours."""
        config = NetworkConfig(
            positions=linear_positions(num_nodes, spacing),
            radio_range=radio_range,
            link_quality=link_quality or LinkQuality(),
            mac_config=mac_config or _default_mac_config(),
            seed=seed,
            trace_enabled=trace_enabled,
            mac_type=mac_type,
        )
        return cls(config)

    @classmethod
    def random(
        cls,
        num_nodes: int,
        radio_range: float = 50.0,
        field_size: Optional[float] = None,
        link_quality: Optional[LinkQuality] = None,
        mac_config: Optional["MacConfig"] = None,
        seed: int = 0,
        trace_enabled: bool = False,
        mac_type: str = "tdma",
    ) -> "Network":
        """A connected random topology in a square field."""
        streams = RandomStreams(seed)
        size = field_size or field_size_for(num_nodes, radio_range)
        positions = random_positions(num_nodes, size, streams.stream("placement"), radio_range=radio_range)
        config = NetworkConfig(
            positions=positions,
            radio_range=radio_range,
            link_quality=link_quality or LinkQuality(),
            mac_config=mac_config or _default_mac_config(),
            seed=seed,
            trace_enabled=trace_enabled,
            mac_type=mac_type,
        )
        network = cls(config)
        network.field_size = size  # type: ignore[attr-defined]
        return network

    # -- lifecycle ------------------------------------------------------------------------

    def attach_mobility(self, mobility) -> None:
        """Attach a mobility model (must happen before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot attach mobility after the network has started")
        self.mobility = mobility

    def install_fault_plan(self, plan: "FaultPlan") -> "FaultInjector":
        """Install a fault-injection plan (must happen before :meth:`start`).

        Materialises the plan's stochastic processes from the dedicated
        ``"faults"`` random stream and schedules every fault event on
        the simulator heap; the injector is kept on
        :attr:`fault_injector` for metrics collection.
        """
        from repro.sim.faults import FaultInjector

        if self._started:
            raise RuntimeError("cannot install a fault plan after the network has started")
        if self.fault_injector is not None:
            raise RuntimeError("a fault plan is already installed")
        injector = FaultInjector(self, plan)
        injector.install()
        self.fault_injector = injector
        return injector

    def start(self) -> None:
        """Start routing (and mobility, if attached); idempotent."""
        if self._started:
            return
        self.routing.start()
        if self.mobility is not None:
            self.mobility.start(self.sim)
        self._started = True

    def run(self, duration: float) -> None:
        """Run the simulation for ``duration`` more seconds."""
        require_positive(duration, "duration")
        self.start()
        self.sim.run(until=self.sim.now + duration)

    # -- conveniences -----------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def allocate_flow_id(self) -> int:
        """Hand out network-unique flow identifiers."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def total_queue_drops(self) -> int:
        """Sum of MAC queue drops across all nodes (Figure 7b metric)."""
        return sum(node.mac.queue_drops for node in self.nodes)

    def hops_between(self, src: int, dst: int) -> Optional[int]:
        """Current shortest-path hop count between two nodes (ground truth)."""
        return self.routing.true_hops(src, dst)
