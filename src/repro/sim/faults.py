"""Deterministic fault injection.

The paper's protocols are built for lossy, mobile ad hoc networks, so a
reproduction that only ever exercises them on happy-path scenarios is
not testing the property the paper claims.  This module schedules
*faults* — node crashes, pauses, forced link outages, group partitions
and Gilbert–Elliott regime overrides — as first-class events on the
existing :class:`~repro.sim.engine.Simulator` heap.

Two layers:

* :class:`FaultPlan` is the declarative schedule: a tuple of fixed-time
  :class:`FaultEvent` entries plus zero or more :class:`FaultProcess`
  entries (Poisson arrivals with exponential outage lengths) that are
  materialised into concrete events at install time from the network's
  dedicated ``"faults"`` random stream.  A plan is plain frozen data:
  picklable, hashable, with a deterministic ``repr`` — so it can ride
  inside :class:`~repro.experiments.parallel.ScenarioSpec` params and
  key the incremental cell cache.
* :class:`FaultInjector` binds a plan to one network: it materialises
  the stochastic processes, schedules every event, applies the fault
  semantics (queue/cache/flow-soft-state teardown on crash, channel
  blocking, regime forcing) and records outage windows and counters for
  the resilience metrics.

Determinism contract: the injector draws only from
``network.streams.stream("faults")``, a stream no other component
touches, and it draws in a fixed order (per process, in declaration
order: inter-arrival gap, outage duration, target index).  The same
seed and plan therefore produce byte-identical event traces on every
backend; an *empty* plan leaves the simulation bit-identical to a run
with no plan installed at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # annotation-only: network.py imports this module lazily
    from repro.sim.network import Network

#: Every fault kind the engine understands, in taxonomy order.
FAULT_KINDS: Tuple[str, ...] = (
    "crash",
    "recover",
    "pause",
    "resume",
    "link_down",
    "link_up",
    "partition",
    "heal",
    "regime",
)

#: Kinds that target nodes / links, and kinds that may carry a duration
#: (the injector schedules the matching reverse event after it).
_NODE_KINDS = frozenset({"crash", "recover", "pause", "resume", "partition", "heal"})
_LINK_KINDS = frozenset({"link_down", "link_up"})
_TIMED_KINDS = frozenset({"crash", "pause", "link_down", "partition", "regime"})
_REVERSE: Dict[str, str] = {
    "crash": "recover",
    "pause": "resume",
    "link_down": "link_up",
    "partition": "heal",
    "regime": "regime",
}

_REGIMES = ("good", "bad")


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault at a fixed simulation time.

    ``nodes`` names the targets of node kinds (for ``partition``/``heal``
    it is the group cut off from — or rejoined with — the rest of the
    network); ``links`` names the directed pairs of link kinds (blocked
    symmetrically).  ``duration`` on a :data:`_TIMED_KINDS` event makes
    the injector schedule the reverse event that much later.  A
    ``regime`` event forces every Gilbert–Elliott link into the given
    state; ``regime=None`` restores the natural per-link process.
    """

    time: float
    kind: str
    nodes: Tuple[int, ...] = ()
    links: Tuple[Tuple[int, int], ...] = ()
    duration: Optional[float] = None
    regime: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind in _NODE_KINDS and not self.nodes:
            raise ValueError(f"{self.kind!r} fault needs at least one target node")
        if self.kind in _LINK_KINDS and not self.links:
            raise ValueError(f"{self.kind!r} fault needs at least one target link")
        if self.duration is not None:
            if self.kind not in _TIMED_KINDS:
                raise ValueError(f"{self.kind!r} fault cannot carry a duration")
            if self.duration <= 0:
                raise ValueError(f"fault duration must be > 0, got {self.duration}")
        if self.regime is not None and self.regime not in _REGIMES:
            raise ValueError(f"regime must be one of {_REGIMES} or None, got {self.regime!r}")
        if self.kind == "regime" and self.duration is not None and self.regime is None:
            raise ValueError("a timed regime event must force a state (regime='good'/'bad')")


@dataclass(frozen=True)
class FaultProcess:
    """A seeded stochastic fault source, materialised at install time.

    Events arrive as a Poisson process of the given ``rate`` between
    ``start`` and ``until``; each event lasts an exponential time with
    mean ``mean_duration`` and strikes one target drawn uniformly from
    the candidate pool (``nodes`` for node kinds, ``links`` for
    ``link_down``; a ``regime`` process needs no pool and forces
    ``regime``).  Materialisation draws, per event and in this order:
    inter-arrival gap, outage duration, target index.
    """

    kind: str
    rate: float
    mean_duration: float
    until: float
    start: float = 0.0
    nodes: Tuple[int, ...] = ()
    links: Tuple[Tuple[int, int], ...] = ()
    regime: str = "bad"

    def __post_init__(self) -> None:
        if self.kind not in _TIMED_KINDS:
            raise ValueError(
                f"stochastic faults must be a timed kind {sorted(_TIMED_KINDS)}, got {self.kind!r}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.mean_duration <= 0:
            raise ValueError(f"mean_duration must be > 0, got {self.mean_duration}")
        if self.start < 0 or self.until <= self.start:
            raise ValueError(f"need 0 <= start < until, got start={self.start}, until={self.until}")
        if self.kind in ("crash", "pause", "partition") and not self.nodes:
            raise ValueError(f"a {self.kind!r} process needs a candidate node pool")
        if self.kind == "link_down" and not self.links:
            raise ValueError("a 'link_down' process needs a candidate link pool")
        if self.regime not in _REGIMES:
            raise ValueError(f"regime must be one of {_REGIMES}, got {self.regime!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative fault schedule: fixed events plus stochastic processes.

    Plans are plain frozen data — picklable, comparable, with a
    deterministic ``repr`` — so they can travel inside scenario params
    across process boundaries and into cell-cache keys.
    """

    events: Tuple[FaultEvent, ...] = ()
    processes: Tuple[FaultProcess, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists at construction time; store tuples.
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "processes", tuple(self.processes))

    def __bool__(self) -> bool:
        return bool(self.events or self.processes)

    @classmethod
    def single_partition(
        cls, group: Tuple[int, ...], start: float, outage: float
    ) -> "FaultPlan":
        """Cut ``group`` off from the rest of the network, heal after ``outage``."""
        return cls(events=(FaultEvent(time=start, kind="partition", nodes=tuple(group), duration=outage),))

    @classmethod
    def node_churn(
        cls,
        nodes: Tuple[int, ...],
        rate: float,
        mean_downtime: float,
        until: float,
        start: float = 0.0,
    ) -> "FaultPlan":
        """Poisson crash/recover churn over a candidate node pool."""
        return cls(
            processes=(
                FaultProcess(
                    kind="crash",
                    rate=rate,
                    mean_duration=mean_downtime,
                    until=until,
                    start=start,
                    nodes=tuple(nodes),
                ),
            )
        )

    @classmethod
    def link_flapping(
        cls,
        links: Tuple[Tuple[int, int], ...],
        rate: float,
        mean_outage: float,
        until: float,
        start: float = 0.0,
    ) -> "FaultPlan":
        """Poisson forced link outages over a candidate link pool."""
        return cls(
            processes=(
                FaultProcess(
                    kind="link_down",
                    rate=rate,
                    mean_duration=mean_outage,
                    until=until,
                    start=start,
                    links=tuple(links),
                ),
            )
        )

    @classmethod
    def blackout(cls, start: float, outage: float) -> "FaultPlan":
        """Force every Gilbert–Elliott link into its bad state for ``outage`` seconds."""
        return cls(events=(FaultEvent(time=start, kind="regime", regime="bad", duration=outage),))


@dataclass
class _NodeState:
    """Injector-side view of one node's fault status."""

    crashed: bool = False
    paused: bool = False


class FaultInjector:
    """Applies a :class:`FaultPlan` to one network, deterministically.

    Construct via :meth:`repro.sim.network.Network.install_fault_plan`
    (before the network starts).  The injector owns all fault state:
    which nodes are down, which links are administratively blocked,
    whether a regime override is active — and mirrors it into the
    channel, the MACs and the iJTP caches as events fire.

    Outage accounting: the union of wall-clock windows during which at
    least one fault condition is active is recorded in
    :attr:`outage_windows` (query via :meth:`outage_windows_until` to
    close a still-open window at end of run); :attr:`counters` tallies
    applied events by kind.
    """

    def __init__(self, network: "Network", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.applied_events = 0
        self.counters: Dict[str, int] = {}
        self._installed = False
        self._node_states: Dict[int, _NodeState] = {}
        self._downed_links: Set[Tuple[int, int]] = set()
        self._partitions: Dict[Tuple[int, ...], Tuple[Tuple[int, int], ...]] = {}
        self._forced_regime: Optional[str] = None
        self._active_conditions = 0
        self._outage_start: Optional[float] = None
        self._windows: List[Tuple[float, float]] = []

    # -- installation ------------------------------------------------------------------

    def install(self) -> None:
        """Materialise the plan and schedule every fault on the event heap."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        sim = self.network.sim
        for event in self.materialize():
            sim.schedule_at(event.time, self._apply, event)

    def materialize(self) -> Tuple[FaultEvent, ...]:
        """The concrete event schedule: fixed events plus drawn process events.

        Stochastic processes draw from the network's dedicated
        ``"faults"`` stream, in declaration order; per event the draws
        are gap, duration, target index.  The result is sorted by time
        (ties keep materialisation order) so the heap applies faults in
        a reproducible sequence.
        """
        events: List[FaultEvent] = list(self.plan.events)
        if self.plan.processes:
            rng = self.network.streams.stream("faults")
            for process in self.plan.processes:
                time = process.start
                while True:
                    time += rng.expovariate(process.rate)
                    if time >= process.until:
                        break
                    duration = rng.expovariate(1.0 / process.mean_duration)
                    if process.kind == "link_down":
                        link = process.links[rng.randrange(len(process.links))]
                        events.append(
                            FaultEvent(time=time, kind="link_down", links=(link,), duration=duration)
                        )
                    elif process.kind == "regime":
                        events.append(
                            FaultEvent(time=time, kind="regime", regime=process.regime, duration=duration)
                        )
                    elif process.kind == "partition":
                        events.append(
                            FaultEvent(
                                time=time, kind="partition", nodes=process.nodes, duration=duration
                            )
                        )
                    else:  # crash / pause on one drawn node
                        node = process.nodes[rng.randrange(len(process.nodes))]
                        events.append(
                            FaultEvent(time=time, kind=process.kind, nodes=(node,), duration=duration)
                        )
        indexed = list(enumerate(events))
        indexed.sort(key=lambda pair: (pair[1].time, pair[0]))
        return tuple(event for _index, event in indexed)

    # -- event application -------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        now = self.network.sim.now
        changed = False
        if event.kind == "crash":
            changed = any([self._crash_node(node) for node in event.nodes])
        elif event.kind == "recover":
            changed = any([self._recover_node(node) for node in event.nodes])
        elif event.kind == "pause":
            changed = any([self._pause_node(node) for node in event.nodes])
        elif event.kind == "resume":
            changed = any([self._resume_node(node) for node in event.nodes])
        elif event.kind == "link_down":
            changed = any([self._down_link(link) for link in event.links])
        elif event.kind == "link_up":
            changed = any([self._up_link(link) for link in event.links])
        elif event.kind == "partition":
            changed = self._partition(event.nodes)
        elif event.kind == "heal":
            changed = self._heal(event.nodes)
        elif event.kind == "regime":
            changed = self._set_regime(event.regime)
        if changed:
            self.applied_events += 1
            self.counters[event.kind] = self.counters.get(event.kind, 0) + 1
            trace = self.network.trace
            if trace.enabled:
                trace.record(
                    "fault",
                    now,
                    fault=event.kind,
                    nodes=event.nodes,
                    links=event.links,
                    regime=event.regime,
                )
            if event.duration is not None:
                reverse = FaultEvent(
                    time=now + event.duration,
                    kind=_REVERSE[event.kind],
                    nodes=event.nodes,
                    links=event.links,
                    regime=None,
                )
                self.network.sim.schedule(event.duration, self._apply, reverse)

    # -- node faults -------------------------------------------------------------------

    def _state(self, node_id: int) -> _NodeState:
        state = self._node_states.get(node_id)
        if state is None:
            if not 0 <= node_id < self.network.num_nodes:
                raise ValueError(f"fault targets unknown node {node_id}")
            state = self._node_states[node_id] = _NodeState()
        return state

    def _crash_node(self, node_id: int) -> bool:
        state = self._state(node_id)
        if state.crashed:
            return False
        was_faulted = state.paused
        state.crashed = True
        state.paused = False
        node = self.network.nodes[node_id]
        node.on_crash()
        self._teardown_cache(node_id)
        self.network.channel.set_node_down(node_id, True)
        if not was_faulted:
            self._condition_began()
        return True

    def _recover_node(self, node_id: int) -> bool:
        state = self._state(node_id)
        if not state.crashed:
            return False
        state.crashed = False
        self.network.channel.set_node_down(node_id, False)
        self.network.nodes[node_id].on_recover()
        self._condition_ended()
        return True

    def _pause_node(self, node_id: int) -> bool:
        state = self._state(node_id)
        if state.crashed or state.paused:
            return False
        state.paused = True
        self.network.nodes[node_id].on_pause()
        self.network.channel.set_node_down(node_id, True)
        self._condition_began()
        return True

    def _resume_node(self, node_id: int) -> bool:
        state = self._state(node_id)
        if not state.paused:
            return False
        state.paused = False
        self.network.channel.set_node_down(node_id, False)
        self.network.nodes[node_id].on_resume()
        self._condition_ended()
        return True

    def _teardown_cache(self, node_id: int) -> None:
        """Crash semantics for iJTP soft state: the cache dies with the node."""
        modules = getattr(self.network, "_ijtp_modules", None)
        if modules is None:
            return
        module = modules[node_id]
        handler = getattr(module, "on_node_crash", None)
        if handler is not None:
            handler()

    # -- link faults -------------------------------------------------------------------

    def _down_link(self, link: Tuple[int, int]) -> bool:
        key = self._link_key(link)
        if key in self._downed_links:
            return False
        self._downed_links.add(key)
        self.network.channel.block_link(key[0], key[1], symmetric=True)
        self._condition_began()
        return True

    def _up_link(self, link: Tuple[int, int]) -> bool:
        key = self._link_key(link)
        if key not in self._downed_links:
            return False
        self._downed_links.discard(key)
        self.network.channel.unblock_link(key[0], key[1], symmetric=True)
        self._condition_ended()
        return True

    @staticmethod
    def _link_key(link: Tuple[int, int]) -> Tuple[int, int]:
        src, dst = link
        if src == dst:
            raise ValueError(f"a link fault needs two distinct nodes, got {link}")
        return (src, dst) if src < dst else (dst, src)

    # -- partitions --------------------------------------------------------------------

    def _partition(self, group: Tuple[int, ...]) -> bool:
        key = tuple(sorted(set(group)))
        if key in self._partitions:
            return False
        others = [node for node in range(self.network.num_nodes) if node not in set(key)]
        cut = tuple((a, b) for a in key for b in others)
        if not cut:
            raise ValueError(f"partition group {group} does not split the network")
        channel = self.network.channel
        for a, b in cut:
            channel.block_link(a, b, symmetric=True)
        self._partitions[key] = cut
        self._condition_began()
        return True

    def _heal(self, group: Tuple[int, ...]) -> bool:
        key = tuple(sorted(set(group)))
        cut = self._partitions.pop(key, None)
        if cut is None:
            return False
        channel = self.network.channel
        for a, b in cut:
            channel.unblock_link(a, b, symmetric=True)
        self._condition_ended()
        return True

    # -- regime override ---------------------------------------------------------------

    def _set_regime(self, regime: Optional[str]) -> bool:
        if regime == self._forced_regime:
            return False
        previous = self._forced_regime
        self._forced_regime = regime
        self.network.channel.force_regime(regime)
        if previous is None and regime is not None:
            self._condition_began()
        elif previous is not None and regime is None:
            self._condition_ended()
        return True

    # -- outage accounting -------------------------------------------------------------

    def _condition_began(self) -> None:
        self._active_conditions += 1
        if self._active_conditions == 1:
            self._outage_start = self.network.sim.now

    def _condition_ended(self) -> None:
        if self._active_conditions <= 0:
            raise RuntimeError("fault bookkeeping underflow (condition ended twice)")
        self._active_conditions -= 1
        if self._active_conditions == 0 and self._outage_start is not None:
            self._windows.append((self._outage_start, self.network.sim.now))
            self._outage_start = None

    @property
    def faults_active(self) -> bool:
        """Whether at least one fault condition is currently in force."""
        return self._active_conditions > 0

    def outage_windows_until(self, until: float) -> Tuple[Tuple[float, float], ...]:
        """Closed union-outage windows, capping any still-open window at ``until``."""
        windows = list(self._windows)
        if self._outage_start is not None and until > self._outage_start:
            windows.append((self._outage_start, until))
        return tuple(windows)

    def total_outage_seconds(self, until: float) -> float:
        """Total wall-clock time with at least one active fault, up to ``until``."""
        return sum(end - start for start, end in self.outage_windows_until(until))

    def heal_times_until(self, until: float) -> Tuple[float, ...]:
        """The instants at which the network returned to a fault-free state."""
        return tuple(end for _start, end in self.outage_windows_until(until) if end < until)
