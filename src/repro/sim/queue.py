"""Drop-tail packet queues.

Every node's MAC holds its outgoing transport packets in a bounded
drop-tail queue.  Queue drops are a first-class metric of the paper:
Figure 7(b) plots "the total number of packet drops in the queues of
the system" as a function of feedback rate, showing that slow feedback
lets the long-lived sender overrun intermediate queues.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

from repro.util.validation import require_positive

T = TypeVar("T")


class DropTailQueue(Generic[T]):
    """A bounded FIFO queue that drops arrivals when full."""

    def __init__(self, capacity: int = 50):
        self.capacity = int(require_positive(capacity, "capacity"))
        self._items: Deque[T] = deque()
        self._drops = 0
        self._enqueued = 0
        self._dequeued = 0
        self._high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def drops(self) -> int:
        """Number of arrivals rejected because the queue was full."""
        return self._drops

    @property
    def enqueued(self) -> int:
        """Number of arrivals accepted."""
        return self._enqueued

    @property
    def dequeued(self) -> int:
        """Number of items removed for service."""
        return self._dequeued

    @property
    def high_watermark(self) -> int:
        """Maximum occupancy ever observed."""
        return self._high_watermark

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> bool:
        """Append ``item``; returns False (and counts a drop) if full."""
        items = self._items
        if len(items) >= self.capacity:
            self._drops += 1
            return False
        items.append(item)
        self._enqueued += 1
        if len(items) > self._high_watermark:
            self._high_watermark = len(items)
        return True

    def push_front(self, item: T) -> bool:
        """Prepend ``item`` (used to re-queue a preempted head-of-line packet)."""
        if self.is_full():
            self._drops += 1
            return False
        self._items.appendleft(item)
        self._enqueued += 1
        self._high_watermark = max(self._high_watermark, len(self._items))
        return True

    def pop(self) -> Optional[T]:
        """Remove and return the head of the queue, or None if empty."""
        if not self._items:
            return None
        self._dequeued += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """Return (without removing) the head of the queue, or None if empty."""
        return self._items[0] if self._items else None

    def drain(self) -> List[T]:
        """Remove and return all queued items in order."""
        items = list(self._items)
        self._dequeued += len(items)
        self._items.clear()
        return items

    def remove_if(self, predicate) -> int:
        """Remove all items matching ``predicate``; returns how many were removed."""
        kept = [item for item in self._items if not predicate(item)]
        removed = len(self._items) - len(kept)
        self._items = deque(kept)
        return removed
