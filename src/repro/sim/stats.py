"""Measurement and accounting.

The paper's two headline metrics are:

* **energy per delivered bit** — system-wide energy attributed to
  transport-layer packets (a monitor at the link layer charges the
  transmission/reception energy of each transport packet, computed from
  the radio power, data rate and packet length), divided by the number
  of application bits delivered;
* **goodput** — the rate at which *new* application data is delivered.

In addition, individual figures use per-node energy (Fig. 4b), queue
drops (Fig. 7b), source retransmissions and cache hits (Figs. 6, 11c)
and reception-rate time series (Figs. 5, 8).  All of those counters
live here so that the experiment harness has a single place to read
results from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.units import bits_from_bytes


class EnergyMeter:
    """Per-node energy accounting with per-flow attribution."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.tx_joules = 0.0
        self.rx_joules = 0.0
        self.per_flow: Dict[int, float] = {}

    @property
    def total_joules(self) -> float:
        """Total transport-attributed energy spent by this node."""
        return self.tx_joules + self.rx_joules

    def record_tx(self, flow_id: int, joules: float) -> None:
        """Charge a transmission attempt to this node and flow."""
        self.tx_joules += joules
        self.per_flow[flow_id] = self.per_flow.get(flow_id, 0.0) + joules

    def record_rx(self, flow_id: int, joules: float) -> None:
        """Charge a successful reception to this node and flow."""
        self.rx_joules += joules
        self.per_flow[flow_id] = self.per_flow.get(flow_id, 0.0) + joules


@dataclass
class FlowStats:
    """Counters for one transport flow (one direction of a transfer)."""

    flow_id: int
    src: int
    dst: int
    transfer_bytes: float = 0.0

    # Sender side
    data_packets_sent: int = 0
    data_bytes_sent: float = 0.0
    source_retransmissions: int = 0
    sender_backoffs: int = 0

    # Receiver side
    data_packets_delivered: int = 0
    unique_bytes_delivered: float = 0.0
    duplicate_packets: int = 0
    acks_sent: int = 0
    ack_bytes_sent: float = 0.0

    # In-network behaviour
    cache_recoveries: int = 0
    cache_hits: int = 0
    in_network_drops: int = 0
    energy_budget_drops: int = 0

    start_time: Optional[float] = None
    first_delivery_time: Optional[float] = None
    last_delivery_time: Optional[float] = None
    completion_time: Optional[float] = None

    reception_times: List[Tuple[float, float]] = field(default_factory=list)

    def record_send(self, now: float, nbytes: float, retransmission: bool = False) -> None:
        """Record a source (re)transmission of ``nbytes`` of data."""
        if self.start_time is None:
            self.start_time = now
        self.data_packets_sent += 1
        self.data_bytes_sent += nbytes
        if retransmission:
            self.source_retransmissions += 1

    def record_delivery(self, now: float, nbytes: float, duplicate: bool = False) -> None:
        """Record delivery of a data packet to the application."""
        if duplicate:
            self.duplicate_packets += 1
            return
        self.data_packets_delivered += 1
        self.unique_bytes_delivered += nbytes
        if self.first_delivery_time is None:
            self.first_delivery_time = now
        self.last_delivery_time = now
        self.reception_times.append((now, nbytes))

    def record_ack(self, nbytes: float) -> None:
        """Record one feedback/ACK packet sent by the receiver."""
        self.acks_sent += 1
        self.ack_bytes_sent += nbytes

    def goodput_bps(self, duration: float) -> float:
        """Delivered application bits per second over ``duration``."""
        if duration <= 0:
            return 0.0
        return bits_from_bytes(self.unique_bytes_delivered) / duration

    def active_duration(self, end_time: float) -> float:
        """Seconds the flow was actively transferring.

        Runs from the flow's start until its completion, or until
        ``end_time`` if the transfer never completed within the run.
        """
        if self.start_time is None:
            return 0.0
        end = self.completion_time if self.completion_time is not None else end_time
        return max(0.0, end - self.start_time)

    def flow_goodput_bps(self, end_time: float) -> float:
        """Per-flow goodput over the flow's own active duration.

        This is the goodput "experienced by flows" that the paper plots:
        a flow that finished early is not penalised for the idle tail of
        the simulation.
        """
        duration = self.active_duration(end_time)
        if duration <= 0:
            return 0.0
        return bits_from_bytes(self.unique_bytes_delivered) / duration

    def delivery_fraction(self) -> float:
        """Fraction of the requested transfer delivered to the application."""
        if self.transfer_bytes <= 0:
            return 0.0
        return min(1.0, self.unique_bytes_delivered / self.transfer_bytes)

    def is_complete(self, loss_tolerance: float = 0.0) -> bool:
        """Whether the delivered fraction satisfies the loss tolerance."""
        return self.delivery_fraction() >= (1.0 - loss_tolerance) - 1e-9

    def reception_rate_series(self, window: float, step: float, until: float) -> List[Tuple[float, float]]:
        """Windowed packet-reception-rate time series (Figures 5 and 8).

        Returns ``(time, packets_per_second)`` samples every ``step``
        seconds up to ``until``, each computed over the trailing
        ``window`` seconds.
        """
        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        series: List[Tuple[float, float]] = []
        times = [t for t, _ in self.reception_times]
        t = step
        idx_low = 0
        idx_high = 0
        while t <= until + 1e-9:
            while idx_high < len(times) and times[idx_high] <= t:
                idx_high += 1
            while idx_low < idx_high and times[idx_low] < t - window:
                idx_low += 1
            series.append((t, (idx_high - idx_low) / window))
            t += step
        return series


class NetworkStats:
    """Aggregated, network-wide measurement state for one simulation run."""

    def __init__(self) -> None:
        self.energy: Dict[int, EnergyMeter] = {}
        self.flows: Dict[int, FlowStats] = {}
        self.link_transmissions = 0
        self.link_successes = 0
        self.queue_drops = 0
        self.routing_drops = 0
        self.control_bytes = 0.0

    # -- registration ---------------------------------------------------------------

    def register_node(self, node_id: int) -> EnergyMeter:
        """Create (or return) the energy meter for ``node_id``."""
        if node_id not in self.energy:
            self.energy[node_id] = EnergyMeter(node_id)
        return self.energy[node_id]

    def register_flow(self, flow_stats: FlowStats) -> FlowStats:
        """Register a flow's counter object."""
        self.flows[flow_stats.flow_id] = flow_stats
        return flow_stats

    # -- recording ------------------------------------------------------------------

    def record_link_attempt(self, success: bool) -> None:
        """Count one MAC transmission attempt."""
        self.link_transmissions += 1
        if success:
            self.link_successes += 1

    def record_queue_drop(self, count: int = 1) -> None:
        """Count packets dropped from MAC queues."""
        self.queue_drops += count

    def record_routing_drop(self, count: int = 1) -> None:
        """Count packets dropped because no route existed."""
        self.routing_drops += count

    # -- derived metrics --------------------------------------------------------------

    def total_energy_joules(self) -> float:
        """System-wide transport-attributed energy."""
        return sum(meter.total_joules for meter in self.energy.values())

    def per_node_energy(self) -> Dict[int, float]:
        """Energy spent per node (Figure 4b)."""
        return {node_id: meter.total_joules for node_id, meter in self.energy.items()}

    def total_delivered_bytes(self) -> float:
        """Unique application bytes delivered across all flows."""
        return sum(flow.unique_bytes_delivered for flow in self.flows.values())

    def total_delivered_bits(self) -> float:
        return bits_from_bytes(self.total_delivered_bytes())

    def energy_per_delivered_bit(self) -> float:
        """Joules per delivered application bit (the paper's headline metric)."""
        bits = self.total_delivered_bits()
        if bits <= 0:
            return float("inf")
        return self.total_energy_joules() / bits

    def aggregate_goodput_bps(self, duration: float) -> float:
        """Total new application bits delivered per second."""
        if duration <= 0:
            return 0.0
        return self.total_delivered_bits() / duration

    def average_flow_goodput_bps(self, duration: float) -> float:
        """Average per-flow goodput (the paper reports per-flow averages)."""
        if not self.flows:
            return 0.0
        return sum(f.flow_goodput_bps(duration) for f in self.flows.values()) / len(self.flows)

    def total_source_retransmissions(self) -> int:
        return sum(f.source_retransmissions for f in self.flows.values())

    def total_cache_recoveries(self) -> int:
        return sum(f.cache_recoveries for f in self.flows.values())

    def link_loss_fraction(self) -> float:
        """Fraction of MAC attempts that failed."""
        if self.link_transmissions == 0:
            return 0.0
        return 1.0 - self.link_successes / self.link_transmissions
