"""Wireless channel model.

The paper's linear-topology experiments state: *"To capture the varying
quality of wireless links, the value of the average pathloss of each
link alternates between a good state (low loss) and a bad state (high
loss).  Each link is in bad state approximately 10% of the time.  The
average duration of the bad period is 3 seconds."*

That is a textbook Gilbert–Elliott two-state model, which this module
implements per directed link.  The channel also answers connectivity
queries (who can hear whom, given positions and radio range), which the
routing protocol and the MAC use.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.sim.topology import Position, connectivity_graph
from repro.util.validation import require_positive, require_probability


@dataclass
class LinkQuality:
    """Loss parameters for the two Gilbert–Elliott states of a link."""

    good_loss: float = 0.02
    bad_loss: float = 0.5
    bad_fraction: float = 0.1
    mean_bad_duration: float = 3.0

    def __post_init__(self) -> None:
        require_probability(self.good_loss, "good_loss")
        require_probability(self.bad_loss, "bad_loss")
        require_probability(self.bad_fraction, "bad_fraction")
        require_positive(self.mean_bad_duration, "mean_bad_duration")
        if self.bad_fraction >= 1.0:
            raise ValueError("bad_fraction must be < 1")

    @property
    def mean_good_duration(self) -> float:
        """Mean dwell time in the good state implied by the bad fraction."""
        if self.bad_fraction == 0.0:
            return math.inf
        return self.mean_bad_duration * (1.0 - self.bad_fraction) / self.bad_fraction

    @property
    def average_loss(self) -> float:
        """Long-run average per-transmission loss probability."""
        return (1.0 - self.bad_fraction) * self.good_loss + self.bad_fraction * self.bad_loss

    @classmethod
    def perfect(cls) -> "LinkQuality":
        """A loss-free link (useful in unit tests)."""
        return cls(good_loss=0.0, bad_loss=0.0, bad_fraction=0.0)

    @classmethod
    def stable(cls, loss: float = 0.01) -> "LinkQuality":
        """A stable, low-loss link like the indoor testbed of Table 2."""
        return cls(good_loss=loss, bad_loss=loss, bad_fraction=0.0)


class GilbertElliottLink:
    """Per-link two-state loss process.

    State dwell times are exponential with the configured means.  State
    transitions are evaluated lazily: the link advances its state
    machine only when queried, so idle links cost nothing.
    """

    GOOD = "good"
    BAD = "bad"

    def __init__(self, quality: LinkQuality, rng: random.Random, start_time: float = 0.0):
        self.quality = quality
        self._rng = rng
        self._state = self.GOOD
        if quality.bad_fraction > 0 and rng.random() < quality.bad_fraction:
            self._state = self.BAD
        self._state_until = start_time + self._sample_dwell(self._state)

    def _sample_dwell(self, state: str) -> float:
        mean = (
            self.quality.mean_bad_duration
            if state == self.BAD
            else self.quality.mean_good_duration
        )
        if math.isinf(mean):
            return math.inf
        return self._rng.expovariate(1.0 / mean)

    def _advance(self, now: float) -> None:
        while now >= self._state_until:
            self._state = self.BAD if self._state == self.GOOD else self.GOOD
            self._state_until += self._sample_dwell(self._state)

    def state(self, now: float) -> str:
        """The link state ('good' or 'bad') at time ``now``."""
        self._advance(now)
        return self._state

    def loss_probability(self, now: float) -> float:
        """Per-transmission loss probability at time ``now``."""
        self._advance(now)
        return self.quality.bad_loss if self._state == self.BAD else self.quality.good_loss

    def transmission_succeeds(self, now: float) -> bool:
        """Sample one transmission attempt outcome at time ``now``."""
        return self._rng.random() >= self.loss_probability(now)


class Channel:
    """The shared wireless medium.

    Responsibilities:

    * maintain node positions (updated by the mobility model),
    * answer connectivity queries from the routing layer,
    * hold one :class:`GilbertElliottLink` per directed link and decide
      the outcome of each MAC transmission attempt,
    * report the *true* instantaneous loss probability of a link, which
      the MAC link estimator only ever sees through noisy measurements.
    """

    def __init__(
        self,
        positions: Sequence[Position],
        radio_range: float,
        rng: random.Random,
        default_quality: Optional[LinkQuality] = None,
    ):
        self.radio_range = require_positive(radio_range, "radio_range")
        self._positions: Dict[int, Position] = dict(enumerate(positions))
        self._rng = rng
        self.default_quality = default_quality or LinkQuality()
        self._links: Dict[Tuple[int, int], GilbertElliottLink] = {}
        self._qualities: Dict[Tuple[int, int], LinkQuality] = {}

    # -- positions and connectivity -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._positions)

    def position_of(self, node_id: int) -> Position:
        return self._positions[node_id]

    def set_position(self, node_id: int, position: Position) -> None:
        """Move a node (called by the mobility model)."""
        if node_id not in self._positions:
            raise KeyError(f"unknown node {node_id}")
        self._positions[node_id] = position

    def in_range(self, src: int, dst: int) -> bool:
        """True iff ``dst`` can currently hear ``src``."""
        if src == dst:
            return False
        return self._positions[src].distance_to(self._positions[dst]) <= self.radio_range

    def neighbors_of(self, node_id: int) -> Set[int]:
        """All nodes currently within radio range of ``node_id``."""
        return {
            other
            for other in self._positions
            if other != node_id and self.in_range(node_id, other)
        }

    def connectivity(self) -> Dict[int, Set[int]]:
        """Current unit-disk connectivity graph."""
        ordered = [self._positions[i] for i in sorted(self._positions)]
        return connectivity_graph(ordered, self.radio_range)

    # -- link quality ----------------------------------------------------------------

    def set_link_quality(self, src: int, dst: int, quality: LinkQuality, symmetric: bool = True) -> None:
        """Override the loss model of one (or both directions of a) link."""
        self._qualities[(src, dst)] = quality
        self._links.pop((src, dst), None)
        if symmetric:
            self._qualities[(dst, src)] = quality
            self._links.pop((dst, src), None)

    def _link(self, src: int, dst: int, now: float) -> GilbertElliottLink:
        key = (src, dst)
        if key not in self._links:
            quality = self._qualities.get(key, self.default_quality)
            stream = random.Random(self._rng.getrandbits(64))
            self._links[key] = GilbertElliottLink(quality, stream, start_time=now)
        return self._links[key]

    def loss_probability(self, src: int, dst: int, now: float) -> float:
        """True per-attempt loss probability of the directed link right now.

        Returns 1.0 if the nodes are out of range (every attempt fails),
        which is how mobility-induced route breakage manifests.
        """
        if not self.in_range(src, dst):
            return 1.0
        return self._link(src, dst, now).loss_probability(now)

    def average_loss_probability(self, src: int, dst: int) -> float:
        """Long-run average loss of the directed link (ignores range)."""
        quality = self._qualities.get((src, dst), self.default_quality)
        return quality.average_loss

    def transmission_succeeds(self, src: int, dst: int, now: float) -> bool:
        """Decide the fate of a single MAC transmission attempt."""
        if not self.in_range(src, dst):
            return False
        return self._link(src, dst, now).transmission_succeeds(now)
