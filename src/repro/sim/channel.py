"""Wireless channel model.

The paper's linear-topology experiments state: *"To capture the varying
quality of wireless links, the value of the average pathloss of each
link alternates between a good state (low loss) and a bad state (high
loss).  Each link is in bad state approximately 10% of the time.  The
average duration of the bad period is 3 seconds."*

That is a textbook Gilbert–Elliott two-state model, which this module
implements per directed link.  The channel also answers connectivity
queries (who can hear whom, given positions and radio range), which the
routing protocol and the MAC use.

Connectivity queries are served from a spatial hash grid
(:class:`repro.sim.spatial.SpatialGrid`, cell side = radio range) with
per-node neighbour sets cached until the next position update, so the
per-transmission ``in_range`` guard is a set-membership test and a
neighbour-table refresh is O(nodes), not O(nodes²).  The cached sets
are built in ascending node-id order — the same insertion sequence the
historical brute-force scan used — which keeps set iteration order,
and therefore every downstream RNG draw, bit-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.spatial import SpatialGrid
from repro.sim.topology import Position
from repro.util.validation import require_positive, require_probability


@dataclass
class LinkQuality:
    """Loss parameters for the two Gilbert–Elliott states of a link."""

    good_loss: float = 0.02
    bad_loss: float = 0.5
    bad_fraction: float = 0.1
    mean_bad_duration: float = 3.0

    def __post_init__(self) -> None:
        require_probability(self.good_loss, "good_loss")
        require_probability(self.bad_loss, "bad_loss")
        require_probability(self.bad_fraction, "bad_fraction")
        require_positive(self.mean_bad_duration, "mean_bad_duration")
        if self.bad_fraction >= 1.0:
            raise ValueError("bad_fraction must be < 1")

    @property
    def mean_good_duration(self) -> float:
        """Mean dwell time in the good state implied by the bad fraction."""
        if self.bad_fraction == 0.0:
            return math.inf
        return self.mean_bad_duration * (1.0 - self.bad_fraction) / self.bad_fraction

    @property
    def average_loss(self) -> float:
        """Long-run average per-transmission loss probability."""
        return (1.0 - self.bad_fraction) * self.good_loss + self.bad_fraction * self.bad_loss

    @classmethod
    def perfect(cls) -> "LinkQuality":
        """A loss-free link (useful in unit tests)."""
        return cls(good_loss=0.0, bad_loss=0.0, bad_fraction=0.0)

    @classmethod
    def stable(cls, loss: float = 0.01) -> "LinkQuality":
        """A stable, low-loss link like the indoor testbed of Table 2."""
        return cls(good_loss=loss, bad_loss=loss, bad_fraction=0.0)


class GilbertElliottLink:
    """Per-link two-state loss process.

    State dwell times are exponential with the configured means.  State
    transitions are evaluated lazily: the link advances its state
    machine only when queried, so idle links cost nothing.

    A link queried after a *very* long idle gap does not replay the full
    transition history: after :data:`MAX_CATCHUP_TRANSITIONS` sampled
    dwells the chain is fast-forwarded to its stationary distribution
    (one state draw plus one dwell draw from "now").  The exponential
    two-state chain mixes to stationarity long before that many
    transitions, so the distribution of what a caller observes is
    unchanged — but the number of RNG draws consumed from the link's
    stream differs from a full replay, so the cap is set high enough
    (~32 mean good/bad cycles) that the paper-scale experiments never
    trigger it; :attr:`fast_forwards` counts how often it fired.
    """

    GOOD = "good"
    BAD = "bad"

    #: Sampled transitions per query before the equilibrium fast-forward.
    MAX_CATCHUP_TRANSITIONS = 64

    def __init__(self, quality: LinkQuality, rng: random.Random, start_time: float = 0.0) -> None:
        self.quality = quality
        self._rng = rng
        self._state = self.GOOD
        if quality.bad_fraction > 0 and rng.random() < quality.bad_fraction:
            self._state = self.BAD
        self._state_until = start_time + self._sample_dwell(self._state)
        self.fast_forwards = 0

    def _sample_dwell(self, state: str) -> float:
        mean = (
            self.quality.mean_bad_duration
            if state == self.BAD
            else self.quality.mean_good_duration
        )
        if math.isinf(mean):
            return math.inf
        return self._rng.expovariate(1.0 / mean)

    def _advance(self, now: float) -> None:
        if now < self._state_until:
            return
        transitions = 0
        while now >= self._state_until:
            transitions += 1
            if transitions > self.MAX_CATCHUP_TRANSITIONS:
                self._fast_forward(now)
                return
            self._state = self.BAD if self._state == self.GOOD else self.GOOD
            self._state_until += self._sample_dwell(self._state)

    def _fast_forward(self, now: float) -> None:
        """Jump the chain to stationarity at ``now`` (long idle gaps)."""
        quality = self.quality
        self._state = self.BAD if self._rng.random() < quality.bad_fraction else self.GOOD
        self._state_until = now + self._sample_dwell(self._state)
        self.fast_forwards += 1

    def state(self, now: float) -> str:
        """The link state ('good' or 'bad') at time ``now``."""
        self._advance(now)
        return self._state

    def loss_probability(self, now: float, forced_state: Optional[str] = None) -> float:
        """Per-transmission loss probability at time ``now``.

        ``forced_state`` (fault injection) overrides which state's loss
        applies without disturbing the underlying chain: the state
        machine still advances and consumes the same draws, so clearing
        the override resumes the natural process exactly where it would
        have been.
        """
        self._advance(now)
        state = self._state if forced_state is None else forced_state
        return self.quality.bad_loss if state == self.BAD else self.quality.good_loss

    def transmission_succeeds(self, now: float, forced_state: Optional[str] = None) -> bool:
        """Sample one transmission attempt outcome at time ``now``.

        The outcome draw is taken *before* the state machine advances —
        the historical evaluation order of ``rng.random() >=
        loss_probability(now)`` (Python evaluates the left operand
        first), which seeded experiments depend on since both draws come
        from the same per-link stream.  ``forced_state`` overrides which
        state's loss the draw is compared against (fault injection)
        while leaving the chain's evolution — and its RNG consumption —
        untouched.
        """
        draw = self._rng.random()
        self._advance(now)
        state = self._state if forced_state is None else forced_state
        loss = self.quality.bad_loss if state == self.BAD else self.quality.good_loss
        return draw >= loss


class Channel:
    """The shared wireless medium.

    Responsibilities:

    * maintain node positions (updated by the mobility model) and the
      spatial index over them,
    * answer connectivity queries from the routing layer,
    * hold one :class:`GilbertElliottLink` per directed link and decide
      the outcome of each MAC transmission attempt,
    * report the *true* instantaneous loss probability of a link, which
      the MAC link estimator only ever sees through noisy measurements.

    The neighbour sets and connectivity graphs returned by
    :meth:`neighbors_of` / :meth:`connectivity` are cached snapshots
    owned by the channel, invalidated on the next :meth:`set_position`;
    treat them as immutable.
    """

    def __init__(
        self,
        positions: Sequence[Position],
        radio_range: float,
        rng: random.Random,
        default_quality: Optional[LinkQuality] = None,
    ) -> None:
        self.radio_range = require_positive(radio_range, "radio_range")
        self._positions: List[Position] = list(positions)
        self._rng = rng
        self.default_quality = default_quality or LinkQuality()
        self._links: Dict[Tuple[int, int], GilbertElliottLink] = {}
        self._qualities: Dict[Tuple[int, int], LinkQuality] = {}
        self._grid = SpatialGrid(radio_range)
        for node_id, position in enumerate(self._positions):
            self._grid.insert(node_id, position.x, position.y)
        #: node -> cached neighbour set; cleared on any position change.
        self._neighbors_cache: Dict[int, Set[int]] = {}
        self._connectivity_cache: Optional[Dict[int, Set[int]]] = None
        # Fault-injection state (repro.sim.faults).  All of it empty/None
        # in a fault-free run, in which case every query below takes the
        # exact historical code path — and the exact historical RNG
        # draws — of a channel that has never heard of faults.
        self._down_nodes: Set[int] = set()
        self._blocked_links: Dict[Tuple[int, int], int] = {}
        self._forced_regime: Optional[str] = None

    # -- positions and connectivity -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._positions)

    def position_of(self, node_id: int) -> Position:
        if not 0 <= node_id < len(self._positions):
            raise KeyError(f"unknown node {node_id}")
        return self._positions[node_id]

    def set_position(self, node_id: int, position: Position) -> None:
        """Move a node (called by the mobility model).

        Updates the spatial index incrementally and invalidates the
        cached neighbour sets / connectivity graph.
        """
        if not 0 <= node_id < len(self._positions):
            raise KeyError(f"unknown node {node_id}")
        self._positions[node_id] = position
        self._grid.move(node_id, position.x, position.y)
        if self._neighbors_cache:
            self._neighbors_cache.clear()
        self._connectivity_cache = None

    def in_range(self, src: int, dst: int) -> bool:
        """True iff ``dst`` can currently hear ``src``."""
        if src == dst:
            return False
        neighbors = self._neighbors_cache.get(src)
        if neighbors is None:
            neighbors = self._compute_neighbors(src)
        if dst in neighbors:
            return True
        # Only the miss branch pays for the id check: neighbour sets can
        # only contain valid ids, and an unknown ``dst`` must keep
        # raising (list indexing would silently alias negative ids).
        if not 0 <= dst < len(self._positions):
            raise KeyError(f"unknown node {dst}")
        return False

    def _compute_neighbors(self, node_id: int) -> Set[int]:
        # Cache-miss path only, so the id check is free on the hot path;
        # without it, list indexing would silently alias negative ids.
        if not 0 <= node_id < len(self._positions):
            raise KeyError(f"unknown node {node_id}")
        # neighbors_within builds the set in the historical brute-force
        # insertion order (ascending ids), which keeps set iteration
        # order — and so every downstream consumer — bit-identical.
        result = self._grid.neighbors_within(node_id, self._positions, self.radio_range)
        if self._down_nodes or self._blocked_links:
            result = self._filter_faulted(node_id, result)
        self._neighbors_cache[node_id] = result
        return result

    def _filter_faulted(self, node_id: int, neighbors: Set[int]) -> Set[int]:
        """Drop down nodes and blocked links from a freshly computed neighbour set.

        Rebuilds the set in ascending-id insertion order so its
        iteration order stays identical to the unfiltered construction.
        """
        if node_id in self._down_nodes:
            return set()
        down = self._down_nodes
        blocked = self._blocked_links
        filtered: Set[int] = set()
        for other in sorted(neighbors):
            if other in down or (node_id, other) in blocked or (other, node_id) in blocked:
                continue
            filtered.add(other)
        return filtered

    def neighbors_of(self, node_id: int) -> Set[int]:
        """All nodes currently within radio range of ``node_id``.

        The returned set is a cached snapshot; treat it as immutable.
        """
        neighbors = self._neighbors_cache.get(node_id)
        if neighbors is None:
            neighbors = self._compute_neighbors(node_id)
        return neighbors

    def connectivity(self) -> Dict[int, Set[int]]:
        """Current unit-disk connectivity graph (cached snapshot)."""
        graph = self._connectivity_cache
        if graph is None:
            graph = {node_id: self.neighbors_of(node_id) for node_id in range(len(self._positions))}
            self._connectivity_cache = graph
        return graph

    # -- fault injection ---------------------------------------------------------------

    def _invalidate_connectivity(self) -> None:
        if self._neighbors_cache:
            self._neighbors_cache.clear()
        self._connectivity_cache = None

    def set_node_down(self, node_id: int, down: bool) -> None:
        """Remove a node from (or restore it to) the connectivity graph.

        A down node hears nothing and is heard by nobody; every
        transmission attempt towards it fails.  Used by the fault
        injector for crashed and paused nodes.
        """
        if not 0 <= node_id < len(self._positions):
            raise KeyError(f"unknown node {node_id}")
        if down:
            if node_id in self._down_nodes:
                return
            self._down_nodes.add(node_id)
        else:
            if node_id not in self._down_nodes:
                return
            self._down_nodes.discard(node_id)
        self._invalidate_connectivity()

    def block_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        """Administratively sever a link (fault injection); reference counted.

        A link blocked by both an explicit link fault and a partition
        stays severed until *both* are lifted.
        """
        self._blocked_links[(src, dst)] = self._blocked_links.get((src, dst), 0) + 1
        if symmetric:
            self._blocked_links[(dst, src)] = self._blocked_links.get((dst, src), 0) + 1
        self._invalidate_connectivity()

    def unblock_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        """Lift one :meth:`block_link` reference; raises if the link is not blocked."""
        for key in ((src, dst), (dst, src)) if symmetric else ((src, dst),):
            count = self._blocked_links.get(key)
            if count is None:
                raise ValueError(f"link {key} is not blocked")
            if count == 1:
                del self._blocked_links[key]
            else:
                self._blocked_links[key] = count - 1
        self._invalidate_connectivity()

    def force_regime(self, state: Optional[str]) -> None:
        """Force every Gilbert–Elliott link's effective state, or restore (None).

        The override changes only which state's loss probability applies;
        each link's chain keeps evolving (and consuming draws) exactly as
        without the override, so clearing it resumes the natural process.
        """
        if state not in (None, GilbertElliottLink.GOOD, GilbertElliottLink.BAD):
            raise ValueError(f"regime must be 'good', 'bad' or None, got {state!r}")
        self._forced_regime = state

    @property
    def down_nodes(self) -> Set[int]:
        """Nodes currently removed from the graph by fault injection (a copy)."""
        return set(self._down_nodes)

    @property
    def forced_regime(self) -> Optional[str]:
        """The active Gilbert–Elliott override, if any."""
        return self._forced_regime

    # -- link quality ----------------------------------------------------------------

    def set_link_quality(self, src: int, dst: int, quality: LinkQuality, symmetric: bool = True) -> None:
        """Override the loss model of one (or both directions of a) link."""
        self._qualities[(src, dst)] = quality
        self._links.pop((src, dst), None)
        if symmetric:
            self._qualities[(dst, src)] = quality
            self._links.pop((dst, src), None)

    def _link(self, src: int, dst: int, now: float) -> GilbertElliottLink:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            quality = self._qualities.get(key, self.default_quality)
            stream = random.Random(self._rng.getrandbits(64))
            link = GilbertElliottLink(quality, stream, start_time=now)
            self._links[key] = link
        return link

    def loss_probability(self, src: int, dst: int, now: float) -> float:
        """True per-attempt loss probability of the directed link right now.

        Returns 1.0 if the nodes are out of range (every attempt fails),
        which is how mobility-induced route breakage manifests.
        """
        if not self.in_range(src, dst):
            return 1.0
        return self._link(src, dst, now).loss_probability(now, self._forced_regime)

    def average_loss_probability(self, src: int, dst: int) -> float:
        """Long-run average loss of the directed link (ignores range)."""
        quality = self._qualities.get((src, dst), self.default_quality)
        return quality.average_loss

    def transmission_succeeds(self, src: int, dst: int, now: float) -> bool:
        """Decide the fate of a single MAC transmission attempt."""
        # Per-transmission hot path: the in_range check is inlined as a
        # membership test on the cached neighbour set (which can never
        # contain ``src`` itself, so no self-loop guard is needed).
        neighbors = self._neighbors_cache.get(src)
        if neighbors is None:
            neighbors = self._compute_neighbors(src)
        if dst not in neighbors:
            if not 0 <= dst < len(self._positions):
                raise KeyError(f"unknown node {dst}")
            return False
        return self._link(src, dst, now).transmission_succeeds(now, self._forced_regime)
