"""Link-state routing with per-node, possibly stale views.

Every node maintains its own copy of the topology, refreshed from the
neighbour-discovery layer on a fixed period (plus on demand when the
mobility model reports a position change, if the scenario wires that
callback).  Between refreshes a node routes — and estimates remaining
hop counts — using its stale view, which is how the paper's
"topological views at different nodes are inconsistent" situation
arises.  JTP's per-hop loss-tolerance update (Eq. 3) is specifically
designed to keep the end-to-end reliability target even then.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.routing.dijkstra import next_hop_table, path_length, shortest_path, shortest_path_tree
from repro.routing.neighbor import NeighborTable
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.util.validation import require_positive


class LinkStateRouting:
    """Network-wide routing service with per-node topology views."""

    def __init__(
        self,
        channel: Channel,
        sim: Simulator,
        update_period: float = 10.0,
        neighbor_refresh_period: float = 5.0,
    ):
        self.channel = channel
        self.sim = sim
        self.update_period = require_positive(update_period, "update_period")
        self.neighbor_table = NeighborTable(channel, sim, refresh_period=neighbor_refresh_period)
        self._views: Dict[int, Dict[int, Set[int]]] = {}
        self._next_hop_tables: Dict[int, Dict[int, int]] = {}
        self._last_snapshot: Optional[Dict[int, Set[int]]] = None
        #: node -> Dijkstra distance map over that node's current view;
        #: filled lazily by :meth:`hops_to`, dropped when views change.
        self._hops_cache: Dict[int, Dict[int, float]] = {}
        self.view_updates = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        """Take initial snapshots and schedule periodic view refreshes."""
        self.neighbor_table.start()
        self.refresh_all_views()
        self.sim.schedule(self.update_period, self._periodic_update)
        self._started = True

    def _periodic_update(self) -> None:
        self.refresh_all_views()
        self.sim.schedule(self.update_period, self._periodic_update)

    def refresh_all_views(self) -> None:
        """Give every node a copy of the currently-known topology.

        The known topology is the neighbour table's snapshot, which may
        itself lag the ground truth; two layers of staleness compound
        under mobility, just as in a real link-state deployment.

        When the snapshot is unchanged since the previous refresh — the
        steady state of every static topology — the per-node view
        copies and shortest-path recomputations are skipped entirely:
        the views a node would receive are equal to the ones it already
        holds.  This is the single biggest saving on the paper's linear
        scenarios, where periodic refreshes used to re-run Dijkstra for
        every node every ``update_period`` against an immutable graph.
        Views are handed out as shared snapshots; treat them as
        immutable.
        """
        self.neighbor_table.refresh()
        snapshot = self.neighbor_table.snapshot()
        if snapshot != self._last_snapshot:
            self._last_snapshot = snapshot
            self._hops_cache.clear()
            for node_id in range(self.channel.num_nodes):
                self._views[node_id] = {k: set(v) for k, v in snapshot.items()}
                self._next_hop_tables[node_id] = next_hop_table(snapshot, node_id)
        self.view_updates += 1

    def on_topology_change(self) -> None:
        """Callback for mobility: mark views as refreshable at next period.

        Deliberately does nothing immediately — a real link-state
        protocol needs time to flood updated LSAs, so the view only
        catches up at the next periodic refresh.  Scenarios that want
        instant convergence can call :meth:`refresh_all_views` instead.
        """

    # -- queries used by forwarding and by iJTP ------------------------------------------

    def view_of(self, node_id: int) -> Dict[int, Set[int]]:
        """The topology as ``node_id`` currently believes it to be."""
        if node_id not in self._views:
            self.refresh_all_views()
        return self._views[node_id]

    def next_hop(self, node_id: int, destination: int) -> Optional[int]:
        """Next hop from ``node_id`` towards ``destination`` (or None)."""
        if node_id == destination:
            return destination
        table = self._next_hop_tables.get(node_id)
        if table is None:
            self.refresh_all_views()
            table = self._next_hop_tables[node_id]
        return table.get(destination)

    def hops_to(self, node_id: int, destination: int) -> Optional[int]:
        """Remaining hop count from ``node_id`` to ``destination`` per its view.

        Served from a per-node distance map computed once per view
        generation — iJTP asks for the remaining hop count on every
        packet service, and re-running Dijkstra against an unchanged
        view was the single hottest call in a paper run.
        """
        if node_id == destination:
            return 0
        dist = self._hops_cache.get(node_id)
        if dist is None:
            dist = shortest_path_tree(self.view_of(node_id), node_id)[0]
            self._hops_cache[node_id] = dist
        hops = dist.get(destination)
        return None if hops is None else int(hops)

    def route(self, source: int, destination: int) -> Optional[List[int]]:
        """Full path from ``source`` to ``destination`` per the source's view."""
        return shortest_path(self.view_of(source), source, destination)

    def is_reachable(self, source: int, destination: int) -> bool:
        """Whether ``source`` currently believes it can reach ``destination``."""
        return self.next_hop(source, destination) is not None

    def true_hops(self, source: int, destination: int) -> Optional[int]:
        """Hop count on the *actual* current topology (ground truth, for tests)."""
        return path_length(self.channel.connectivity(), source, destination)
