"""Link-state routing substrate.

JAVeLEN uses an energy-conserving link-state routing protocol that
gives every node "a local, possibly inaccurate, view of the network's
topology".  JTP relies on routing for exactly two things:

* the next hop towards a destination (packet forwarding), and
* the number of remaining hops to the destination, which iJTP uses to
  split the end-to-end loss tolerance across the remaining links
  (Section 3) — and which may be stale or wrong, a situation JTP is
  explicitly designed to tolerate.

This package provides a Dijkstra shortest-path core
(:mod:`repro.routing.dijkstra`), periodic neighbour discovery
(:mod:`repro.routing.neighbor`) and a link-state protocol with
per-node, possibly stale topology views
(:mod:`repro.routing.link_state`).
"""

from repro.routing.dijkstra import shortest_path, shortest_path_tree, next_hop_table, path_length
from repro.routing.neighbor import NeighborTable
from repro.routing.link_state import LinkStateRouting

__all__ = [
    "shortest_path",
    "shortest_path_tree",
    "next_hop_table",
    "path_length",
    "NeighborTable",
    "LinkStateRouting",
]
