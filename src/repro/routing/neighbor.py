"""Neighbour discovery.

A node's neighbour set is the set of nodes it can currently hear.  Real
systems discover this with periodic hello beacons; here the table is
refreshed from the channel's ground truth at a configurable period, so
that under mobility a node's neighbour knowledge (and therefore its
topology view) can lag reality — exactly the "possibly inaccurate view"
the paper attributes to the JAVeLEN routing layer.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.util.validation import require_positive


class NeighborTable:
    """Per-node neighbour sets refreshed on a fixed period."""

    def __init__(self, channel: Channel, sim: Simulator, refresh_period: float = 5.0):
        self.channel = channel
        self.sim = sim
        self.refresh_period = require_positive(refresh_period, "refresh_period")
        self._neighbors: Dict[int, Set[int]] = {}
        self._last_refresh: Optional[float] = None
        self.refresh_count = 0

    def start(self) -> None:
        """Take an initial snapshot and schedule periodic refreshes."""
        self.refresh()
        self.sim.schedule(self.refresh_period, self._periodic_refresh)

    def _periodic_refresh(self) -> None:
        self.refresh()
        self.sim.schedule(self.refresh_period, self._periodic_refresh)

    def refresh(self) -> None:
        """Snapshot the true connectivity right now."""
        self._neighbors = {
            node_id: self.channel.neighbors_of(node_id)
            for node_id in range(self.channel.num_nodes)
        }
        self._last_refresh = self.sim.now
        self.refresh_count += 1

    def neighbors_of(self, node_id: int) -> Set[int]:
        """The (possibly stale) neighbour set of ``node_id``."""
        if self._last_refresh is None:
            self.refresh()
        return set(self._neighbors.get(node_id, set()))

    def snapshot(self) -> Dict[int, Set[int]]:
        """The whole (possibly stale) connectivity graph."""
        if self._last_refresh is None:
            self.refresh()
        return {node: set(neigh) for node, neigh in self._neighbors.items()}

    @property
    def age(self) -> float:
        """Seconds since the last refresh."""
        if self._last_refresh is None:
            return float("inf")
        return self.sim.now - self._last_refresh
