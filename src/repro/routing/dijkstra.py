"""Shortest-path computation on connectivity graphs.

The graphs handled here are adjacency mappings ``{node: set(neighbors)}``
as produced by :func:`repro.sim.topology.connectivity_graph` or by the
link-state protocol's per-node views.  All links have unit cost (hop
count), matching the paper's use of hop counts for the remaining-path
length in the loss-tolerance computation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Set, Tuple


Graph = Mapping[int, Set[int]]


def shortest_path_tree(graph: Graph, source: int) -> Tuple[Dict[int, float], Dict[int, Optional[int]]]:
    """Dijkstra from ``source``: returns (distance, predecessor) maps.

    Unreachable nodes are simply absent from the returned maps.
    """
    if source not in graph:
        raise KeyError(f"source {source} not in graph")
    dist: Dict[int, float] = {source: 0.0}
    prev: Dict[int, Optional[int]] = {source: None}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited: Set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        # repro: allow[DET002] dist is order-independent (unit costs); prev ties pin to the ascending insertion order connectivity_graph guarantees
        for neighbor in graph.get(node, ()):  # tolerate dangling edges
            candidate = d + 1.0
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return dist, prev


def shortest_path(graph: Graph, source: int, destination: int) -> Optional[List[int]]:
    """Hop-minimal path from ``source`` to ``destination`` (inclusive), or None."""
    if source == destination:
        return [source]
    dist, prev = shortest_path_tree(graph, source)
    if destination not in dist:
        return None
    path = [destination]
    while path[-1] != source:
        parent = prev[path[-1]]
        if parent is None:
            return None
        path.append(parent)
    path.reverse()
    return path


def path_length(graph: Graph, source: int, destination: int) -> Optional[int]:
    """Number of links on the shortest path, or None if unreachable."""
    path = shortest_path(graph, source, destination)
    if path is None:
        return None
    return len(path) - 1


def next_hop_table(graph: Graph, source: int) -> Dict[int, int]:
    """For every reachable destination, the first hop on the shortest path."""
    dist, prev = shortest_path_tree(graph, source)
    table: Dict[int, int] = {}
    for destination in dist:
        if destination == source:
            continue
        node = destination
        while prev[node] is not None and prev[node] != source:
            node = prev[node]  # type: ignore[assignment]
        table[destination] = node
    return table
