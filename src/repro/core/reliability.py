"""Adjustable reliability for energy conservation (Section 3).

The application expresses an end-to-end loss tolerance ``l_e2e``.  On a
path of ``H`` links with per-link success probabilities ``q_i`` the
application requirement is satisfied when

    ``l_e2e = 1 - prod_i q_i``                               (Eq. 1)

Each node turns its per-link success target into a bounded number of
link-layer transmission attempts: if a single attempt fails with
probability ``p_i`` then ``q_i = 1 - p_i ** M_i`` and therefore

    ``M_i = max(1, min(log(1 - q_i) / log(p_i), MAX_ATTEMPTS))``   (Eq. 2)

Before forwarding, the node rewrites the packet's loss-tolerance field
so downstream nodes do not reuse effort this node already spent:

    ``lt_{i+1} = 1 - (1 - lt_i) / q_i``                       (Eq. 3)

With equal per-link targets (the strategy the paper evaluates) the
target on each of the remaining ``H_i`` links is

    ``q = (1 - lt_i) ** (1 / H_i)``                           (Eq. 4)
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.util.validation import require_positive, require_probability


def per_link_success_target(loss_tolerance: float, remaining_hops: int) -> float:
    """Equation (4): equal per-link success target for the remaining path.

    A loss tolerance of 0 demands success probability 1 on every link
    (which Eq. 2 then caps at MAX_ATTEMPTS); a loss tolerance of 1
    requires nothing at all.
    """
    require_probability(loss_tolerance, "loss_tolerance")
    require_positive(remaining_hops, "remaining_hops")
    return (1.0 - loss_tolerance) ** (1.0 / remaining_hops)


def attempts_for_target(success_target: float, link_loss: float, max_attempts: int) -> int:
    """Equation (2): attempts needed so that ``1 - p**M >= success_target``.

    The result is always at least 1 and never exceeds ``max_attempts``
    (the MAC's MAX_ATTEMPTS).  Degenerate cases:

    * a loss-free link needs exactly one attempt,
    * a success target of 1 (zero loss tolerance) can never be met with
      finitely many attempts over a lossy link, so the cap applies,
    * a success target of 0 needs one attempt (we always try once),
    * a certainly-lost link (``link_loss = 1``) can never meet a
      positive target, so the cap applies (this used to divide by
      ``log(1) = 0``); a zero target still needs only the one attempt.
    """
    require_probability(success_target, "success_target")
    require_probability(link_loss, "link_loss")
    require_positive(max_attempts, "max_attempts")
    if link_loss <= 0.0:
        return 1
    if success_target >= 1.0:
        return int(max_attempts)
    if success_target <= 0.0:
        return 1
    if link_loss >= 1.0:
        return int(max_attempts)
    raw = math.log(1.0 - success_target) / math.log(link_loss)
    attempts = int(math.ceil(raw - 1e-12))
    return max(1, min(attempts, int(max_attempts)))


def achieved_link_success(link_loss: float, attempts: int) -> float:
    """Success probability actually achieved with ``attempts`` tries: ``1 - p**M``."""
    require_probability(link_loss, "link_loss")
    require_positive(attempts, "attempts")
    return 1.0 - link_loss ** attempts


def updated_loss_tolerance(loss_tolerance: float, link_success: float) -> float:
    """Equation (3): loss tolerance to carry forward after this link.

    ``lt' = 1 - (1 - lt) / q`` where ``q`` is this link's success
    probability.  If the link overshoots the target (``q`` close to 1),
    the forwarded tolerance grows, letting downstream nodes relax; if
    the link can only undershoot (``q`` small), the result is clamped at
    0 — downstream nodes must then do their best (full effort).
    """
    require_probability(loss_tolerance, "loss_tolerance")
    if link_success <= 0.0:
        return 0.0
    updated = 1.0 - (1.0 - loss_tolerance) / link_success
    return min(1.0, max(0.0, updated))


def end_to_end_success_probability(link_successes: Sequence[float]) -> float:
    """Equation (1) rearranged: product of per-link success probabilities."""
    product = 1.0
    for q in link_successes:
        require_probability(q, "link success probability")
        product *= q
    return product


def plan_link_attempts(
    loss_tolerance: float,
    link_loss: float,
    remaining_hops: int,
    max_attempts: int,
) -> Tuple[int, float]:
    """Eqs. (4), (2) and (3) fused for the per-packet hot path.

    Returns ``(attempts, updated_loss_tolerance)`` — exactly the values
    :func:`per_link_success_target` → :func:`attempts_for_target` →
    :func:`achieved_link_success` → :func:`updated_loss_tolerance`
    produce, evaluated with the identical floating-point expressions but
    without the per-call argument validation: iJTP runs this once per
    packet service, and its inputs are established protocol invariants
    (tolerances clamped to [0, 1] by Eq. 3 itself, ``remaining_hops``
    floored at 1 by the caller), not user input.  The validated
    single-equation functions above remain the public API; the
    property-based tests pin this function against them.
    """
    target = (1.0 - loss_tolerance) ** (1.0 / remaining_hops)
    if link_loss <= 0.0:
        attempts = 1
    elif target >= 1.0:
        attempts = int(max_attempts)
    elif target <= 0.0:
        attempts = 1
    elif link_loss >= 1.0:
        attempts = int(max_attempts)
    else:
        raw = math.log(1.0 - target) / math.log(link_loss)
        attempts = int(math.ceil(raw - 1e-12))
        attempts = max(1, min(attempts, int(max_attempts)))
    link_success = 1.0 - link_loss ** attempts
    if link_success <= 0.0:
        updated = 0.0
    else:
        updated = 1.0 - (1.0 - loss_tolerance) / link_success
        updated = min(1.0, max(0.0, updated))
    return attempts, updated


def plan_hop_attempts(
    loss_tolerance: float,
    link_losses: Sequence[float],
    max_attempts: int,
) -> Tuple[List[int], float]:
    """Simulate the hop-by-hop planning a packet experiences along a path.

    For each hop in turn the function applies Eqs. (4), (2) and (3)
    exactly as iJTP would, returning the per-hop attempt bounds and the
    end-to-end success probability actually achieved.  This is the
    reference model the property-based tests check the live iJTP
    implementation against.
    """
    attempts_plan: List[int] = []
    achieved: List[float] = []
    lt = loss_tolerance
    total_hops = len(link_losses)
    for index, loss in enumerate(link_losses):
        remaining = total_hops - index
        target = per_link_success_target(lt, remaining)
        attempts = attempts_for_target(target, loss, max_attempts)
        attempts_plan.append(attempts)
        q = achieved_link_success(loss, attempts)
        achieved.append(q)
        lt = updated_loss_tolerance(lt, q)
    return attempts_plan, end_to_end_success_probability(achieved)
