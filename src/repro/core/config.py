"""JTP configuration.

Table 1 of the paper lists the default parameter values used throughout
the evaluation:

============================  =============
MAX_ATTEMPTS                  5
JTP packet size               800 bytes
Cache size                    1000 packets
T_lower_bound                 10 s
============================  =============

and the prototype header sizes are 28 bytes for the JTP header and
200 bytes for the (unoptimised) ACK header.  All remaining knobs —
controller gains, filter weights, feedback behaviour — are collected
here with sensible defaults so that every experiment can express its
deviation from the defaults as a small, explicit override.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum

from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class FeedbackMode(Enum):
    """How the destination paces its feedback/ACK stream (Section 5)."""

    VARIABLE = "variable"
    CONSTANT = "constant"


class CachePolicy(Enum):
    """Cache eviction policy for iJTP's in-network packet cache (Section 4)."""

    LRU = "lru"
    FIFO = "fifo"


@dataclass(frozen=True)
class JTPConfig:
    """All tunable parameters of a JTP connection and its iJTP modules."""

    # --- Table 1 defaults -----------------------------------------------------------
    packet_size_bytes: float = 800.0
    max_attempts: int = 5
    cache_size: int = 1000
    t_lower_bound: float = 10.0

    # --- header sizes (prototype implementation values quoted in Section 6.1) --------
    header_bytes: float = 28.0
    ack_header_bytes: float = 200.0

    # --- application reliability (Section 3) -----------------------------------------
    loss_tolerance: float = 0.0

    # --- sending-rate control (Section 5.2.1, Eqs. 9-10) ------------------------------
    initial_rate_pps: float = 1.0
    min_rate_pps: float = 0.5
    max_rate_pps: float = 8.0
    ki: float = 0.5
    kd: float = 0.8
    delta_target_pps: float = 1.0

    # --- flip-flop path monitor (Section 5.1, Eqs. 7-8) -------------------------------
    alpha_stable: float = 0.3
    alpha_agile: float = 0.7
    beta_range: float = 0.1
    control_limit_sigma: float = 3.0
    control_limit_d2: float = 1.128
    outlier_trigger_count: int = 3

    # --- energy budget controller (Section 5.2.4, Eq. 13) -----------------------------
    beta_energy: float = 1.5
    initial_energy_budget_margin: float = 3.0

    # --- feedback scheduling (Section 5.1) ---------------------------------------------
    feedback_mode: FeedbackMode = FeedbackMode.VARIABLE
    feedback_n: float = 4.0
    constant_feedback_period: float = 5.0
    ack_timeout_multiplier: float = 2.0

    # --- in-network caching (Section 4) -------------------------------------------------
    caching_enabled: bool = True
    cache_policy: CachePolicy = CachePolicy.LRU

    # --- fair-caching source back-off (Section 4.2) --------------------------------------
    backoff_enabled: bool = True

    # --- miscellaneous --------------------------------------------------------------------
    rtt_alpha: float = 0.2
    equal_link_targets: bool = True

    def __post_init__(self) -> None:
        require_positive(self.packet_size_bytes, "packet_size_bytes")
        require_positive(self.max_attempts, "max_attempts")
        require_positive(self.cache_size, "cache_size")
        require_positive(self.t_lower_bound, "t_lower_bound")
        require_non_negative(self.header_bytes, "header_bytes")
        require_non_negative(self.ack_header_bytes, "ack_header_bytes")
        require_probability(self.loss_tolerance, "loss_tolerance")
        require_positive(self.initial_rate_pps, "initial_rate_pps")
        require_positive(self.min_rate_pps, "min_rate_pps")
        require_positive(self.max_rate_pps, "max_rate_pps")
        if self.min_rate_pps > self.max_rate_pps:
            raise ValueError("min_rate_pps must not exceed max_rate_pps")
        require_in_range(self.ki, 1e-6, 1.0, "ki")
        require_in_range(self.kd, 1e-6, 1.0 - 1e-9, "kd")
        require_non_negative(self.delta_target_pps, "delta_target_pps")
        require_in_range(self.alpha_stable, 0.0, 1.0, "alpha_stable")
        require_in_range(self.alpha_agile, 0.0, 1.0, "alpha_agile")
        if self.alpha_agile < self.alpha_stable:
            raise ValueError("alpha_agile must be at least alpha_stable (agile filter catches up faster)")
        require_in_range(self.beta_range, 0.0, 1.0, "beta_range")
        require_positive(self.control_limit_sigma, "control_limit_sigma")
        require_positive(self.control_limit_d2, "control_limit_d2")
        require_positive(self.outlier_trigger_count, "outlier_trigger_count")
        if self.beta_energy <= 1.0:
            raise ValueError("beta_energy must be > 1 so the path monitor can still detect outliers (Eq. 13)")
        require_positive(self.initial_energy_budget_margin, "initial_energy_budget_margin")
        require_positive(self.feedback_n, "feedback_n")
        require_positive(self.constant_feedback_period, "constant_feedback_period")
        if self.ack_timeout_multiplier < 1.0:
            raise ValueError("ack_timeout_multiplier must be >= 1")
        require_in_range(self.rtt_alpha, 0.0, 1.0, "rtt_alpha")

    # -- convenience -------------------------------------------------------------------

    @property
    def data_packet_bytes(self) -> float:
        """On-air size of a full data packet (payload plus JTP header)."""
        return self.packet_size_bytes + self.header_bytes

    @property
    def ack_packet_bytes(self) -> float:
        """On-air size of a feedback packet (JTP header plus ACK header)."""
        return self.header_bytes + self.ack_header_bytes

    def variant(self, **overrides) -> "JTPConfig":
        """A copy of this configuration with some fields overridden.

        Experiments use this to express "same as default except ..."
        concisely, e.g. ``config.variant(loss_tolerance=0.1)`` for the
        jtp10 flows of Figure 3.
        """
        return dataclasses.replace(self, **overrides)

    @classmethod
    def jtp0(cls) -> "JTPConfig":
        """Fully reliable JTP (0% loss tolerance), the paper's default for comparisons."""
        return cls(loss_tolerance=0.0)

    @classmethod
    def jtp10(cls) -> "JTPConfig":
        """JTP with 10% application loss tolerance (Figure 3)."""
        return cls(loss_tolerance=0.10)

    @classmethod
    def jtp20(cls) -> "JTPConfig":
        """JTP with 20% application loss tolerance (Figure 3)."""
        return cls(loss_tolerance=0.20)

    @classmethod
    def no_caching(cls, **overrides) -> "JTPConfig":
        """The JNC variant of Section 4.1: JTP with in-network caching disabled."""
        params = {"caching_enabled": False}
        params.update(overrides)
        return cls(**params)
