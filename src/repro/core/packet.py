"""JTP packet formats (Figure 2) and a binary codec.

Data packets carry the three novel JTP header fields — **available
rate**, **loss tolerance** and **energy budget** — plus the running
**energy used** counter and a deadline field reserved for real-time
traffic.  Feedback packets additionally carry the ACK header: a
cumulative positive acknowledgment, a selective negative acknowledgment
(SNACK) list, the **locally-recovered** list that intermediate caches
fill in, the allowed sending rate, the energy budget and the sender
timeout (the receiver's feedback period T).

The in-simulator representation is a mutable :class:`Packet` object so
that iJTP's per-hop soft-state operations (Algorithms 1 and 2) can
update header fields in place, exactly as Dynamic-Packet-State style
protocols do.  :class:`PacketCodec` provides a wire encoding used by
the serialization tests and by anyone embedding JTP outside the
simulator; note that, like the paper's prototype, the encoded header is
slightly larger than the optimised 28-byte layout of Figure 2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.util.units import bits_from_bytes


class PacketType(Enum):
    """JTP packet types."""

    DATA = 1
    ACK = 2


@dataclass
class AckInfo:
    """The optional ACK header of Figure 2(b).

    ``cumulative_ack`` is the positive cumulative acknowledgment,
    ``snack`` the selective *negative* acknowledgment (sequence numbers
    the receiver is still missing and still wants), ``highest_received``
    the largest sequence number seen so far (so the sender can treat
    un-SNACKed packets below it as implicitly delivered), and
    ``locally_recovered`` the SNACK entries already served by an
    in-network cache on the ACK's way upstream.
    """

    cumulative_ack: int = -1
    highest_received: int = -1
    snack: Tuple[int, ...] = ()
    locally_recovered: Tuple[int, ...] = ()
    rate_pps: float = 0.0
    energy_budget: float = 0.0
    sender_timeout: float = 0.0
    echo_timestamp: float = 0.0
    feedback_seq: int = 0

    def outstanding_snack(self) -> Tuple[int, ...]:
        """SNACK entries not already satisfied by an in-network cache."""
        recovered = set(self.locally_recovered)
        return tuple(seq for seq in self.snack if seq not in recovered)


@dataclass
class Packet:
    """A JTP packet travelling through the simulated network.

    ``payload_bytes`` is application data only; ``header_bytes`` covers
    the JTP header and, for ACKs, the ACK header as well.  The MAC uses
    :attr:`size_bits` for airtime and energy accounting.
    """

    flow_id: int
    seq: int
    packet_type: PacketType
    src: int
    dst: int
    payload_bytes: float = 0.0
    header_bytes: float = 28.0

    # JTP header fields (Figure 2a)
    loss_tolerance: float = 0.0
    energy_budget: float = float("inf")
    energy_used: float = 0.0
    available_rate_pps: float = float("inf")
    deadline: float = float("inf")
    created_at: float = 0.0
    timestamp: float = 0.0

    # Optional ACK header (Figure 2b)
    ack: Optional[AckInfo] = None

    # Soft state manipulated hop-by-hop (not carried on the wire)
    max_link_attempts: Optional[int] = None
    is_retransmission: bool = False
    recovered_by: Optional[int] = None
    hops_travelled: int = 0

    @property
    def size_bytes(self) -> float:
        """Total on-air size of the packet."""
        return self.payload_bytes + self.header_bytes

    @property
    def size_bits(self) -> float:
        """Total on-air size in bits (what the MAC charges energy for).

        Evaluates `bits_from_bytes(size_bytes)` without the extra
        property hop — the MAC reads this on every transmission attempt.
        """
        return bits_from_bytes(self.payload_bytes + self.header_bytes)

    def __post_init__(self) -> None:
        # Plain attributes rather than properties: the MAC, iJTP and the
        # caches branch on these for every packet event, and
        # ``packet_type`` never changes after construction.
        self.is_data = self.packet_type is PacketType.DATA
        self.is_ack = self.packet_type is PacketType.ACK

    def remaining_energy_budget(self) -> float:
        """Energy budget left before iJTP must drop the packet (Alg. 1, line 2)."""
        return self.energy_budget - self.energy_used

    def cache_key(self) -> Tuple[int, int]:
        """Key under which iJTP caches this packet."""
        return (self.flow_id, self.seq)

    def clone_for_retransmission(self, recovered_by: Optional[int] = None) -> "Packet":
        """A fresh copy used for cache or source retransmissions.

        Per-hop soft state (attempt bound) is reset and the energy-used
        counter starts from zero: a retransmission is a new delivery
        attempt with its own energy budget.  The energy already spent on
        the original copy is not forgotten — it was charged to the node
        energy meters when it was spent — but carrying it forward would
        make an unlucky packet permanently over budget and turn every
        retransmission of it into an immediate drop.

        The loss tolerance is reset to zero: a packet is only ever
        retransmitted because the destination explicitly asked for it in
        a SNACK, i.e. the application still needs it, so half-hearted
        redelivery attempts would just trigger another round of recovery.
        """
        return Packet(
            flow_id=self.flow_id,
            seq=self.seq,
            packet_type=self.packet_type,
            src=self.src,
            dst=self.dst,
            payload_bytes=self.payload_bytes,
            header_bytes=self.header_bytes,
            loss_tolerance=0.0,
            energy_budget=self.energy_budget,
            energy_used=0.0,
            available_rate_pps=float("inf"),
            deadline=self.deadline,
            created_at=self.created_at,
            timestamp=self.timestamp,
            ack=None,
            is_retransmission=True,
            recovered_by=recovered_by,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.packet_type.name
        return f"<Packet {kind} flow={self.flow_id} seq={self.seq} {self.src}->{self.dst}>"


class PacketCodec:
    """Binary wire format for JTP packets.

    Layout (network byte order):

    * fixed part: flow_id (I), seq (i), type (B), flags (B), src (H),
      dst (H), payload length (I), loss tolerance (f), energy budget (f),
      energy used (f), available rate (f), deadline (f), timestamp (d);
    * ACK extension (present iff the ACK flag is set): cumulative ack (i),
      highest received (i), rate (f), energy budget (f), sender timeout
      (f), echo timestamp (d), feedback seq (I), snack count (H),
      recovered count (H), then the SNACK and locally-recovered sequence
      numbers (I each).
    """

    _FIXED = struct.Struct("!IiBBHHIfffffd")
    _ACK_FIXED = struct.Struct("!iifffdIHH")
    _SEQ = struct.Struct("!I")

    _FLAG_ACK = 0x01
    _FLAG_RETRANSMISSION = 0x02
    _INF_SENTINEL = 3.0e38  # representable in a float32, treated as infinity

    @classmethod
    def _to_wire_float(cls, value: float) -> float:
        return cls._INF_SENTINEL if value == float("inf") else float(value)

    @classmethod
    def _from_wire_float(cls, value: float) -> float:
        return float("inf") if value >= cls._INF_SENTINEL / 2 else value

    @classmethod
    def encode(cls, packet: Packet) -> bytes:
        """Serialise ``packet`` to bytes."""
        flags = 0
        if packet.is_ack:
            flags |= cls._FLAG_ACK
        if packet.is_retransmission:
            flags |= cls._FLAG_RETRANSMISSION
        blob = cls._FIXED.pack(
            packet.flow_id,
            packet.seq,
            packet.packet_type.value,
            flags,
            packet.src,
            packet.dst,
            int(packet.payload_bytes),
            packet.loss_tolerance,
            cls._to_wire_float(packet.energy_budget),
            packet.energy_used,
            cls._to_wire_float(packet.available_rate_pps),
            cls._to_wire_float(packet.deadline),
            packet.timestamp,
        )
        if packet.is_ack:
            ack = packet.ack or AckInfo()
            blob += cls._ACK_FIXED.pack(
                ack.cumulative_ack,
                ack.highest_received,
                ack.rate_pps,
                cls._to_wire_float(ack.energy_budget),
                ack.sender_timeout,
                ack.echo_timestamp,
                ack.feedback_seq,
                len(ack.snack),
                len(ack.locally_recovered),
            )
            for seq in ack.snack:
                blob += cls._SEQ.pack(seq)
            for seq in ack.locally_recovered:
                blob += cls._SEQ.pack(seq)
        return blob

    @classmethod
    def decode(cls, blob: bytes) -> Packet:
        """Deserialise bytes produced by :meth:`encode`."""
        if len(blob) < cls._FIXED.size:
            raise ValueError(f"truncated packet: {len(blob)} bytes < fixed header {cls._FIXED.size}")
        (
            flow_id,
            seq,
            type_value,
            flags,
            src,
            dst,
            payload_len,
            loss_tolerance,
            energy_budget,
            energy_used,
            available_rate,
            deadline,
            timestamp,
        ) = cls._FIXED.unpack_from(blob, 0)
        packet = Packet(
            flow_id=flow_id,
            seq=seq,
            packet_type=PacketType(type_value),
            src=src,
            dst=dst,
            payload_bytes=float(payload_len),
            loss_tolerance=loss_tolerance,
            energy_budget=cls._from_wire_float(energy_budget),
            energy_used=energy_used,
            available_rate_pps=cls._from_wire_float(available_rate),
            deadline=cls._from_wire_float(deadline),
            timestamp=timestamp,
            is_retransmission=bool(flags & cls._FLAG_RETRANSMISSION),
        )
        offset = cls._FIXED.size
        if flags & cls._FLAG_ACK:
            if len(blob) < offset + cls._ACK_FIXED.size:
                raise ValueError("truncated ACK header")
            (
                cumulative_ack,
                highest_received,
                rate_pps,
                ack_energy_budget,
                sender_timeout,
                echo_timestamp,
                feedback_seq,
                snack_count,
                recovered_count,
            ) = cls._ACK_FIXED.unpack_from(blob, offset)
            offset += cls._ACK_FIXED.size
            needed = (snack_count + recovered_count) * cls._SEQ.size
            if len(blob) < offset + needed:
                raise ValueError("truncated SNACK list")
            snack = []
            for _ in range(snack_count):
                snack.append(cls._SEQ.unpack_from(blob, offset)[0])
                offset += cls._SEQ.size
            recovered = []
            for _ in range(recovered_count):
                recovered.append(cls._SEQ.unpack_from(blob, offset)[0])
                offset += cls._SEQ.size
            packet.ack = AckInfo(
                cumulative_ack=cumulative_ack,
                highest_received=highest_received,
                snack=tuple(snack),
                locally_recovered=tuple(recovered),
                rate_pps=rate_pps,
                energy_budget=cls._from_wire_float(ack_energy_budget),
                sender_timeout=sender_timeout,
                echo_timestamp=echo_timestamp,
                feedback_seq=feedback_seq,
            )
        return packet

    @classmethod
    def encoded_size(cls, packet: Packet) -> int:
        """Size in bytes of the wire encoding (without payload bytes)."""
        size = cls._FIXED.size
        if packet.is_ack:
            ack = packet.ack or AckInfo()
            size += cls._ACK_FIXED.size + (len(ack.snack) + len(ack.locally_recovered)) * cls._SEQ.size
        return size
