"""Analytic model of the in-network caching gain (Section 4.1).

With infinite caches and symmetric routes, every lost packet is
recovered from the last downstream node that received it, so each link
behaves as an independent geometric retransmission process:

    ``E[T_tot^JTP] = k * H * 1 / (1 - p)``                     (Eq. 5)

Without caching, a packet that exhausts its ``n`` attempts on any link
must be retransmitted from the source, which re-spends all the energy
already used getting it part-way:

    ``E[T_tot^JNC] = k (1-p^n) (1-(1-p^n)^H) / ((1-p^n)^H (1-p) p^n)``
    ``             ≈ k * H / ((1-p^n)^(H-1) (1-p))``            (Eq. 6)

The ratio of the two is the caching gain, ``(1 - p^n)^-(H-1)``, which
grows with both the path length and the link loss probability.
"""

from __future__ import annotations

from repro.util.validation import require_positive, require_probability


def expected_link_transmissions_with_caching(link_loss: float) -> float:
    """Mean transmissions on one link under per-hop recovery (geometric mean 1/(1-p))."""
    require_probability(link_loss, "link_loss")
    if link_loss >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - link_loss)


def expected_transmissions_with_caching(packets: float, hops: int, link_loss: float) -> float:
    """Equation (5): expected total node transmissions to deliver ``packets`` over ``hops``."""
    require_positive(packets, "packets")
    require_positive(hops, "hops")
    return packets * hops * expected_link_transmissions_with_caching(link_loss)


def expected_link_transmissions_without_caching(link_loss: float, attempts: int) -> float:
    """Mean transmissions one node performs per packet it receives (bounded ARQ).

    ``E[T_l^JNC] = (1 - p^n) / (1 - p)`` — the truncated-geometric mean.
    """
    require_probability(link_loss, "link_loss")
    require_positive(attempts, "attempts")
    if link_loss >= 1.0:
        return float(attempts)
    if link_loss == 0.0:
        return 1.0
    return (1.0 - link_loss ** attempts) / (1.0 - link_loss)


def end_to_end_success_without_caching(link_loss: float, attempts: int, hops: int) -> float:
    """``q_e2e = (1 - p^n)^H`` — probability a packet survives all hops."""
    require_positive(hops, "hops")
    q_link = 1.0 - link_loss ** attempts
    return q_link ** hops


def expected_transmissions_without_caching(
    packets: float, hops: int, link_loss: float, attempts: int, exact: bool = True
) -> float:
    """Equation (6): expected total node transmissions without in-network caching.

    ``exact=True`` evaluates the full sum; ``exact=False`` returns the
    paper's approximation ``k H / ((1-p^n)^(H-1) (1-p))``.
    """
    require_positive(packets, "packets")
    require_positive(hops, "hops")
    require_probability(link_loss, "link_loss")
    require_positive(attempts, "attempts")
    if link_loss == 0.0:
        return packets * hops
    q_link = 1.0 - link_loss ** attempts
    if q_link <= 0.0:
        return float("inf")
    per_node = expected_link_transmissions_without_caching(link_loss, attempts)
    if exact:
        expected_source_sends = packets / (q_link ** hops)
        total = sum(expected_source_sends * (q_link ** i) * per_node for i in range(hops))
        return total
    return packets * hops / ((q_link ** (hops - 1)) * (1.0 - link_loss))


def caching_gain(hops: int, link_loss: float, attempts: int) -> float:
    """Ratio JNC cost / JTP cost ≈ ``(1 - p^n)^-(H-1)`` (the paper's observation)."""
    with_caching = expected_transmissions_with_caching(1.0, hops, link_loss)
    without = expected_transmissions_without_caching(1.0, hops, link_loss, attempts, exact=False)
    if with_caching == 0.0:
        return float("inf")
    return without / with_caching
