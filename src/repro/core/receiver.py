"""eJTP receiver (destination side of a JTP connection).

The destination owns *all* transmission parameters of the connection
(Section 5): it monitors the path through the header fields stamped by
iJTP, runs the PI²/MD sending-rate controller and the energy budget
controller, decides which missing packets are worth recovering given
the application's loss tolerance, and paces its own feedback stream —
regular feedback at the low variable rate ``T`` plus early feedback
whenever the flip-flop monitor flags a persistent path change.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Set, Tuple

from repro.core.config import JTPConfig
from repro.core.feedback import FeedbackScheduler
from repro.core.packet import AckInfo, Packet, PacketType
from repro.core.path_monitor import PathMonitor
from repro.core.rate_controller import EnergyBudgetController, PIMDRateController
from repro.sim.stats import FlowStats
from repro.sim.trace import TraceRecorder
from repro.util.validation import require_positive


class JTPReceiver:
    """Destination endpoint of one JTP transfer."""

    #: Minimum spacing between feedback packets, to keep a burst of
    #: monitor triggers from turning into an ACK storm.
    MIN_FEEDBACK_SPACING = 3.0

    #: How many final feedback messages to send once the transfer is
    #: satisfied before going quiet.
    FINAL_FEEDBACKS = 2

    #: Largest number of missing packets requested in one SNACK.  A
    #: bounded request keeps cache-retransmission bursts from
    #: overflowing mid-path queues; anything left over is requested in
    #: the next feedback message.
    MAX_SNACK_REPORT = 32

    def __init__(
        self,
        node,
        flow_id: int,
        src: int,
        total_packets: int,
        config: Optional[JTPConfig] = None,
        flow_stats: Optional[FlowStats] = None,
        trace: Optional[TraceRecorder] = None,
        delivery_rate_limit_pps: Optional[float] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.flow_id = flow_id
        self.src = src
        self.total_packets = int(require_positive(total_packets, "total_packets"))
        self.config = config or JTPConfig()
        self.flow_stats = flow_stats or FlowStats(flow_id, src, node.node_id)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.delivery_rate_limit_pps = delivery_rate_limit_pps
        self.on_complete = on_complete

        self.monitor = PathMonitor(self.config)
        self.rate_controller = PIMDRateController(self.config)
        self.energy_controller = EnergyBudgetController(self.config)
        self.scheduler = FeedbackScheduler(self.config)

        self._received: Set[int] = set()
        self._forgiven: Set[int] = set()
        self._snack_issued_at: dict = {}
        self._highest_seq = -1
        self._max_forgivable = int(math.floor(self.config.loss_tolerance * self.total_packets))
        self._feedback_event = None
        self._feedback_seq = 0
        self._last_feedback_time = -float("inf")
        self._last_data_timestamp = 0.0
        self._final_feedbacks_sent = 0
        self._started = False
        self.satisfied_time: Optional[float] = None

    # -- lifecycle --------------------------------------------------------------------------

    def start(self) -> None:
        """Arm the first regular feedback timer."""
        if self._started:
            return
        self._started = True
        self._schedule_feedback(self._current_period())

    def _current_period(self) -> float:
        rtt = self.monitor.rtt_or(0.0)
        return self.scheduler.period(self.rate_controller.rate_pps, rtt)

    def _schedule_feedback(self, delay: float) -> None:
        if self._feedback_event is not None:
            self._feedback_event.cancel()
        self._feedback_event = self.sim.schedule(delay, self._periodic_feedback)

    # -- data path --------------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Handle a data packet delivered to this node."""
        if not packet.is_data:
            return
        now = self.sim.now
        duplicate = packet.seq in self._received
        self.flow_stats.record_delivery(now, packet.payload_bytes, duplicate=duplicate)
        if not duplicate:
            self._received.add(packet.seq)
            self._forgiven.discard(packet.seq)
            self._highest_seq = max(self._highest_seq, packet.seq)

        sample = self.monitor.observe_packet(packet, now)
        if packet.timestamp > 0:
            # With simulated clocks the one-way delay is known exactly;
            # double it for a round-trip estimate.
            self.monitor.observe_rtt(2.0 * max(0.0, now - packet.timestamp))
        self._last_data_timestamp = packet.timestamp

        self.trace.record(
            "jtp_receive", now, flow=self.flow_id, seq=packet.seq,
            rate_stamp=packet.available_rate_pps, energy_used=packet.energy_used,
            monitor_mean=sample.available_rate.mean,
            monitor_ucl=sample.available_rate.upper_control_limit,
            monitor_lcl=sample.available_rate.lower_control_limit,
            duplicate=duplicate,
        )

        if sample.significant_change and now - self._last_feedback_time >= self.MIN_FEEDBACK_SPACING:
            self._send_feedback(early=True)

        self._check_satisfied(now)

    # -- application-level reliability ---------------------------------------------------------

    def _ack_state(self, now: float) -> Tuple[int, Tuple[int, ...]]:
        """Compute the cumulative ACK and the SNACK list.

        Missing packets are *forgiven* (never requested, treated as
        acknowledged) oldest-first, as long as the total number of
        forgiven packets stays within the application's loss-tolerance
        budget.  Everything else missing below the highest received
        sequence number is SNACKed.  The SNACK is always the complete
        list of still-wanted packets (up to the report cap): the sender
        relies on "below highest-received and not SNACKed" meaning
        "delivered", so omitting a wanted packet here would make the
        sender discard it prematurely.  Duplicate-retransmission
        suppression is the retransmitters' job (iJTP holds off on
        recently recovered packets, the sender on recently resent ones).
        """
        missing = [
            seq for seq in range(self._highest_seq + 1)
            if seq not in self._received and seq not in self._forgiven
        ]
        budget = self._max_forgivable - len(self._forgiven)
        if budget > 0 and missing:
            for seq in missing[:budget]:
                self._forgiven.add(seq)
            missing = missing[budget:]
        cumulative = self._cumulative_ack()
        snack = tuple(missing[: self.MAX_SNACK_REPORT])
        for seq in snack:
            self._snack_issued_at[seq] = now
        return cumulative, snack

    def _cumulative_ack(self) -> int:
        """Highest sequence number such that everything at or below it is settled."""
        cumulative = -1
        settled = self._received | self._forgiven
        for seq in range(self._highest_seq + 1):
            if seq in settled:
                cumulative = seq
            else:
                break
        return cumulative

    @property
    def delivered_packets(self) -> int:
        return len(self._received)

    @property
    def forgiven_packets(self) -> int:
        return len(self._forgiven)

    def _check_satisfied(self, now: float) -> None:
        if self.satisfied_time is not None:
            return
        if len(self._received) + len(self._forgiven) >= self.total_packets and self._cumulative_ack() >= self.total_packets - 1:
            self.satisfied_time = now
            if self.on_complete is not None:
                self.on_complete(now)

    # -- feedback ---------------------------------------------------------------------------------

    def _periodic_feedback(self) -> None:
        self._send_feedback(early=False)

    def _send_feedback(self, early: bool) -> None:
        now = self.sim.now

        # Stop acknowledging once the transfer is satisfied and a couple
        # of final feedback messages have been delivered; an idle
        # receiver that keeps acknowledging forever would burn exactly
        # the energy JTP is designed to save.
        if self.satisfied_time is not None and self._final_feedbacks_sent >= self.FINAL_FEEDBACKS:
            return

        available = self.monitor.average_available_rate
        if available is not None:
            self.rate_controller.update(available, self.delivery_rate_limit_pps)
        self.energy_controller.update(self.monitor.energy_upper_control_limit)

        cumulative, snack = self._ack_state(now)
        # Forgiving packets inside _ack_state may have just settled the
        # whole transfer; re-evaluate so the receiver can go quiet.
        self._check_satisfied(now)
        period = self._current_period()
        ack = AckInfo(
            cumulative_ack=cumulative,
            highest_received=self._highest_seq,
            snack=snack,
            locally_recovered=(),
            rate_pps=self.rate_controller.rate_pps,
            energy_budget=self.energy_controller.budget_or(0.0),
            sender_timeout=self.scheduler.sender_timeout(period),
            echo_timestamp=self._last_data_timestamp,
            feedback_seq=self._feedback_seq,
        )
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._feedback_seq,
            packet_type=PacketType.ACK,
            src=self.node.node_id,
            dst=self.src,
            payload_bytes=0.0,
            header_bytes=self.config.header_bytes + self.config.ack_header_bytes,
            timestamp=now,
            ack=ack,
        )
        self._feedback_seq += 1
        self.node.send(packet)
        self.flow_stats.record_ack(packet.size_bytes)
        if early:
            self.scheduler.note_early_feedback()
        else:
            self.scheduler.note_regular_feedback()
        self._last_feedback_time = now
        if self.satisfied_time is not None:
            self._final_feedbacks_sent += 1

        self.trace.record(
            "jtp_feedback", now, flow=self.flow_id, early=early,
            cumulative=cumulative, snack=len(snack),
            rate=self.rate_controller.rate_pps, period=period,
        )
        self._schedule_feedback(period)
