"""iJTP — the hop-by-hop soft-state module (Section 2.2.2, Algorithms 1-2).

iJTP is installed as a plug-in of each node's MAC and is invoked exactly
before a packet is transmitted (``pre_transmit``, Algorithm 1 "PreXmit")
and exactly after a packet is received from the physical layer
(``post_receive``, Algorithm 2 "PostRcv").  It keeps **no per-flow
state**: everything it needs travels in packet headers (Dynamic Packet
State style) or lives in its bounded packet cache.

PreXmit (data and ACK packets alike):

1. enforce the energy budget — a packet whose accumulated energy-used
   exceeds its budget is dropped (this also serves as the
   energy-conscious TTL against routing loops);
2. on the packet's first data transmission at this node, compute the
   maximum number of link-layer attempts from the link's loss rate and
   the packet's remaining loss tolerance (Eqs. 4 and 2), then update
   the loss-tolerance field for the remainder of the path (Eq. 3);
3. stamp the packet with the minimum *effective* available rate seen so
   far (the MAC's available rate normalised by the average number of
   link-layer attempts).

PostRcv:

* data packets are inserted into the local cache;
* ACK packets have their SNACK examined — requested packets present in
  the cache are retransmitted towards the destination and moved to the
  ACK's locally-recovered field so upstream nodes and the source do not
  retransmit them again.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.cache import PacketCache
from repro.core.config import JTPConfig
from repro.core.packet import AckInfo, Packet
from repro.core.reliability import plan_link_attempts
from repro.mac.tdma import LinkContext, TdmaMac
from repro.sim.stats import NetworkStats
from repro.sim.trace import TraceRecorder


class IntermediateJTP:
    """One node's iJTP instance."""

    #: Seconds to wait before retransmitting the same cached packet
    #: again.  Successive feedback messages keep listing a missing
    #: packet until it finally arrives; without a hold-off every one of
    #: them would trigger another cache retransmission of a copy that is
    #: already on its way.
    RECOVERY_HOLDOFF = 6.0

    def __init__(
        self,
        node_id: int,
        mac: TdmaMac,
        config: Optional[JTPConfig] = None,
        stats: Optional[NetworkStats] = None,
        trace: Optional[TraceRecorder] = None,
        send_fn: Optional[Callable[[Packet], bool]] = None,
    ):
        self.node_id = node_id
        self.mac = mac
        self.config = config or JTPConfig()
        self.stats = stats
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.send_fn = send_fn
        self.cache: Optional[PacketCache] = (
            PacketCache(self.config.cache_size, self.config.cache_policy)
            if self.config.caching_enabled
            else None
        )
        self.energy_budget_drops = 0
        self.local_retransmissions = 0
        self._recent_recoveries: dict = {}
        self._installed = False

    # -- installation -----------------------------------------------------------------------

    def install(self) -> None:
        """Register PreXmit/PostRcv as MAC hooks (idempotent)."""
        if self._installed:
            return
        self.mac.pre_transmit_hooks.append(self.pre_transmit)
        self.mac.post_receive_hooks.append(self.post_receive)
        self._installed = True

    def on_node_crash(self) -> None:
        """Crash teardown (fault injection): iJTP soft state dies with the node.

        The packet cache and the recovery hold-off table are per-node
        soft state in the paper's sense — rebuilt from traversing
        traffic, never required for correctness — so a crashed node
        restarts with both empty.
        """
        if self.cache is not None:
            self.cache.clear()
        self._recent_recoveries.clear()

    # -- Algorithm 1: PreXmit ------------------------------------------------------------------

    def pre_transmit(self, packet: object, context: LinkContext) -> bool:
        """Per-hop soft-state operations run just before transmission.

        Returns False to make the MAC drop the packet (energy budget
        exceeded).  Non-JTP packets pass through untouched so baseline
        protocols can share the same MAC.
        """
        if not isinstance(packet, Packet):
            return True

        # Lines 1-3: energy budget enforcement.  The MAC accumulates the
        # actual per-attempt energy into packet.energy_used; here we check
        # the budget before spending any more on this hop.
        if packet.energy_used > packet.energy_budget:
            self.energy_budget_drops += 1
            self._count_flow(packet, "energy_budget_drops")
            self.trace.record(
                "energy_budget_drop", context.now, node=self.node_id,
                flow=packet.flow_id, seq=packet.seq,
                used=packet.energy_used, budget=packet.energy_budget,
            )
            return False

        if packet.is_data:
            # Lines 5-9: compute this hop's attempt bound and update the
            # loss tolerance carried forward ("firstDataTransmission" is
            # per hop — the hook runs once per packet service, retries
            # reuse the bound installed here).
            remaining_hops = context.remaining_hops
            if remaining_hops is None or remaining_hops < 1:
                remaining_hops = 1
            attempts, packet.loss_tolerance = plan_link_attempts(
                packet.loss_tolerance, context.loss_rate, remaining_hops,
                self.config.max_attempts,
            )
            packet.max_link_attempts = attempts
            if self.trace.enabled:
                self.trace.record(
                    "ijtp_attempts", context.now, node=self.node_id, flow=packet.flow_id,
                    seq=packet.seq, attempts=attempts, loss_rate=context.loss_rate,
                    remaining_hops=remaining_hops,
                )

            # Lines 10-12: stamp the minimum effective available rate.
            effective_rate = context.available_rate_pps / max(1.0, context.average_attempts)
            packet.available_rate_pps = min(packet.available_rate_pps, effective_rate)

        return True

    # -- Algorithm 2: PostRcv ---------------------------------------------------------------------

    def post_receive(self, packet: object, mac: TdmaMac) -> bool:
        """Per-hop operations run just after reception from the physical layer."""
        if not isinstance(packet, Packet):
            return True
        if packet.is_data:
            self._cache_data_packet(packet)
        elif packet.is_ack and packet.ack is not None:
            self._serve_snack(packet, packet.ack)
        return True

    def _cache_data_packet(self, packet: Packet) -> None:
        if self.cache is None:
            return
        # The destination keeps the packet anyway; only transit nodes cache.
        if packet.dst == self.node_id:
            return
        self.cache.insert(packet)

    def _serve_snack(self, ack_packet: Packet, ack: AckInfo) -> None:
        """Retransmit SNACKed packets found in the cache; annotate the ACK."""
        if self.cache is not None and ack.cumulative_ack >= 0:
            self.cache.discard_up_to(ack_packet.flow_id, ack.cumulative_ack)
        if self.cache is None or self.send_fn is None:
            return
        outstanding = ack.outstanding_snack()
        if not outstanding:
            return
        now = self.mac.sim.now
        recovered = []
        for seq in outstanding:
            key = (ack_packet.flow_id, seq)
            recently = self._recent_recoveries.get(key)
            if recently is not None and now - recently < self.RECOVERY_HOLDOFF:
                # A copy from this node is already in flight; claim the
                # entry so upstream nodes and the source do not duplicate it.
                recovered.append(seq)
                continue
            cached = self.cache.lookup(ack_packet.flow_id, seq)
            if cached is None:
                continue
            clone = cached.clone_for_retransmission(recovered_by=self.node_id)
            if self.send_fn(clone):
                recovered.append(seq)
                self._recent_recoveries[key] = now
                self.local_retransmissions += 1
                self._count_flow(ack_packet, "cache_recoveries")
                self._count_flow(ack_packet, "cache_hits")
                self.trace.record(
                    "cache_recovery", now, node=self.node_id,
                    flow=ack_packet.flow_id, seq=seq,
                )
        if recovered:
            ack.locally_recovered = tuple(sorted(set(ack.locally_recovered) | set(recovered)))
        if len(self._recent_recoveries) > 4 * self.config.cache_size:
            horizon = now - self.RECOVERY_HOLDOFF
            self._recent_recoveries = {
                key: when for key, when in self._recent_recoveries.items() if when >= horizon
            }

    # -- helpers ----------------------------------------------------------------------------------

    def _count_flow(self, packet: Packet, counter: str) -> None:
        if self.stats is None:
            return
        flow = self.stats.flows.get(packet.flow_id)
        if flow is None:
            return
        setattr(flow, counter, getattr(flow, counter) + 1)


def install_ijtp_everywhere(network, config: Optional[JTPConfig] = None) -> list:
    """Install an iJTP module on every node of ``network``.

    Returns the list of created modules.  The ``send_fn`` of each module
    is the owning node's :meth:`Node.send`, so cache retransmissions are
    routed and scheduled exactly like any other packet originating at
    that node.
    """
    modules = []
    for node in network.nodes:
        module = IntermediateJTP(
            node.node_id,
            node.mac,
            config=config,
            stats=network.stats,
            trace=network.trace,
            send_fn=node.send,
        )
        module.install()
        modules.append(module)
    return modules
