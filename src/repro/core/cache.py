"""In-network packet cache (Section 4).

Every iJTP instance manages a bounded cache of the data packets that
traversed its node.  When an ACK with a SNACK list passes through, any
requested packet found in the cache is retransmitted towards the
destination and marked in the ACK's locally-recovered field so that
upstream nodes (and ultimately the source) do not retransmit it again.

The paper evicts the **least recently manipulated** packet (LRU) on
overflow and leaves the study of other policies to future work; a FIFO
policy is provided here so that ablation benchmarks can quantify the
difference.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import CachePolicy
from repro.core.packet import Packet
from repro.util.validation import require_positive


class PacketCache:
    """Bounded per-node store of traversing data packets.

    Alongside the recency-ordered entry map, a per-flow sequence-number
    index is maintained so that the cumulative-ACK and flow-teardown
    discards touch only the affected flow's entries instead of scanning
    the whole cache (every traversing ACK triggers one such discard).
    """

    def __init__(self, capacity: int = 1000, policy: CachePolicy = CachePolicy.LRU):
        self.capacity = int(require_positive(capacity, "capacity"))
        self.policy = policy
        self._entries: "OrderedDict[Tuple[int, int], Packet]" = OrderedDict()
        self._flow_index: Dict[int, Set[int]] = {}
        self.insertions = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    def insert(self, packet: Packet) -> None:
        """Store a traversing data packet, evicting if necessary.

        Re-inserting an already-cached packet refreshes both its stored
        copy and, under LRU, its recency.
        """
        if not packet.is_data:
            raise ValueError("only data packets are cached")
        key = packet.cache_key()
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[key] = packet
        index = self._flow_index.get(key[0])
        if index is None:
            index = self._flow_index[key[0]] = set()
        index.add(key[1])
        self.insertions += 1

    def _evict_one(self) -> None:
        """Remove one packet according to the configured policy.

        Under both LRU and FIFO the victim is the first entry of the
        ordered dict; the difference is that LRU refreshes an entry's
        position on every lookup while FIFO never does.
        """
        key, _ = self._entries.popitem(last=False)
        self._unindex(key)
        self.evictions += 1

    def _unindex(self, key: Tuple[int, int]) -> None:
        seqs = self._flow_index.get(key[0])
        if seqs is not None:
            seqs.discard(key[1])
            if not seqs:
                del self._flow_index[key[0]]

    def lookup(self, flow_id: int, seq: int) -> Optional[Packet]:
        """Return the cached packet, refreshing recency under LRU."""
        key = (flow_id, seq)
        packet = self._entries.get(key)
        if packet is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.policy is CachePolicy.LRU:
            self._entries.move_to_end(key)
        return packet

    def discard(self, flow_id: int, seq: int) -> bool:
        """Remove a packet (e.g. once it is known to be delivered)."""
        key = (flow_id, seq)
        if self._entries.pop(key, None) is None:
            return False
        self._unindex(key)
        return True

    def discard_up_to(self, flow_id: int, cumulative_ack: int) -> int:
        """Drop all cached packets of ``flow_id`` with seq <= ``cumulative_ack``.

        Called when a traversing ACK shows those packets have reached
        the destination; keeping them would only waste cache slots.
        Only the flow's own index entries are visited, so the cost is
        independent of the total cache size.  Returns the number of
        entries removed.
        """
        seqs = self._flow_index.get(flow_id)
        if not seqs:
            return 0
        stale = [seq for seq in seqs if seq <= cumulative_ack]
        for seq in stale:
            del self._entries[(flow_id, seq)]
        seqs.difference_update(stale)
        if not seqs:
            del self._flow_index[flow_id]
        return len(stale)

    def discard_flow(self, flow_id: int) -> int:
        """Drop every cached packet belonging to ``flow_id``."""
        seqs = self._flow_index.pop(flow_id, None)
        if not seqs:
            return 0
        for seq in seqs:
            del self._entries[(flow_id, seq)]
        return len(seqs)

    def clear(self) -> int:
        """Drop every cached packet (node-crash teardown); returns the count.

        Hit/miss/eviction counters survive — they describe the node's
        history, not its current contents.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self._flow_index.clear()
        return dropped

    def retrieve_for_snack(self, flow_id: int, snack: Tuple[int, ...]) -> List[Packet]:
        """All cached packets of ``flow_id`` whose seq appears in ``snack``."""
        found: List[Packet] = []
        for seq in snack:
            packet = self.lookup(flow_id, seq)
            if packet is not None:
                found.append(packet)
        return found

    def occupancy_by_flow(self) -> Dict[int, int]:
        """Number of cached packets per flow (useful for fairness studies)."""
        return {flow_id: len(seqs) for flow_id, seqs in self._flow_index.items()}

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that found the requested packet."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
