"""Destination-based congestion avoidance (Section 5.2).

**PI²/MD sending-rate controller** (Eqs. 9-10): when the filtered
available path rate A̅ exceeds the target δ the rate grows by
``K_I · A̅ / r`` (proportional to spare capacity, inversely proportional
to the current rate to favour slow flows — this is where fairness comes
from); when A̅ falls below δ the rate is cut multiplicatively by
``K_D``.  Section 5.2.2 proves convergence for any ``K_I > 0`` and
``K_D < 1`` via a Lyapunov argument; :func:`simulate_rate_convergence`
reproduces that closed-loop model so the property tests can check the
claim numerically.

**Energy budget controller** (Eq. 13): the budget fed back to the
source is ``β · eUCL`` with ``β > 1``, i.e. a headroom factor above the
path monitor's upper control limit for per-packet energy, so transient
surges and route failures do not starve packets of budget while the
monitor can still flag outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import JTPConfig
from repro.util.validation import clamp, require_positive


class PIMDRateController:
    """The destination's sending-rate controller."""

    def __init__(self, config: Optional[JTPConfig] = None, initial_rate: Optional[float] = None):
        self.config = config or JTPConfig()
        self._rate = initial_rate if initial_rate is not None else self.config.initial_rate_pps
        self._rate = clamp(self._rate, self.config.min_rate_pps, self.config.max_rate_pps)
        self.increases = 0
        self.decreases = 0

    @property
    def rate_pps(self) -> float:
        """The sending rate currently allowed to the source."""
        return self._rate

    def update(self, available_rate: float, delivery_limit: Optional[float] = None) -> float:
        """Fold one available-rate observation into the rate (Eqs. 9-10).

        ``delivery_limit`` is the receiver's own delivery rate up the
        stack; the paper notes the destination also limits the sending
        rate by it.
        """
        cfg = self.config
        if available_rate > cfg.delta_target_pps:
            self._rate = self._rate + cfg.ki * available_rate / max(self._rate, cfg.min_rate_pps)
            self.increases += 1
        else:
            self._rate = cfg.kd * self._rate
            self.decreases += 1
        if delivery_limit is not None:
            self._rate = min(self._rate, max(cfg.min_rate_pps, delivery_limit))
        self._rate = clamp(self._rate, cfg.min_rate_pps, cfg.max_rate_pps)
        return self._rate

    def multiplicative_backoff(self) -> float:
        """Cut the rate by K_D (used on missing feedback and by the sender's timeout)."""
        self._rate = clamp(self._rate * self.config.kd, self.config.min_rate_pps, self.config.max_rate_pps)
        self.decreases += 1
        return self._rate


class EnergyBudgetController:
    """The destination's per-packet energy budget controller (Eq. 13)."""

    def __init__(self, config: Optional[JTPConfig] = None):
        self.config = config or JTPConfig()
        self._budget: Optional[float] = None

    @property
    def budget(self) -> Optional[float]:
        """The last budget computed, or None if no energy sample was seen yet."""
        return self._budget

    def update(self, energy_upper_control_limit: Optional[float]) -> Optional[float]:
        """Compute ``e = β · eUCL`` from the path monitor's control limit."""
        if energy_upper_control_limit is None or energy_upper_control_limit <= 0.0:
            return self._budget
        self._budget = self.config.beta_energy * energy_upper_control_limit
        return self._budget

    def budget_or(self, default: float) -> float:
        return default if self._budget is None else self._budget


@dataclass(frozen=True)
class RateTrajectory:
    """Result of the closed-loop convergence model of Section 5.2.2."""

    rates: List[float]
    converged: bool
    settling_index: Optional[int]


def simulate_rate_convergence(
    capacity: float,
    initial_rate: float,
    ki: float,
    kd: float,
    iterations: int = 200,
    tolerance: float = 0.05,
) -> RateTrajectory:
    """Iterate Eqs. (11)-(12): a single flow over a fixed-capacity channel.

    The Lyapunov analysis guarantees |C - r| shrinks every step whenever
    ``K_I > 0`` and ``K_D < 1``; the returned trajectory lets tests (and
    the stability benchmark) verify convergence speed and the
    oscillation/settling trade-off for different gains.
    """
    require_positive(capacity, "capacity")
    require_positive(initial_rate, "initial_rate")
    require_positive(ki, "ki")
    if not 0.0 < kd < 1.0:
        raise ValueError(f"kd must be in (0, 1), got {kd}")
    rates = [initial_rate]
    settling_index: Optional[int] = None
    rate = initial_rate
    for index in range(iterations):
        if rate < capacity:
            rate = rate + ki * (capacity - rate) / rate
        elif rate > capacity:
            rate = kd * rate
        rates.append(rate)
        if settling_index is None and abs(rate - capacity) <= tolerance * capacity:
            settling_index = index + 1
    converged = abs(rates[-1] - capacity) <= tolerance * capacity
    return RateTrajectory(rates=rates, converged=converged, settling_index=settling_index)
