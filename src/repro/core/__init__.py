"""JTP — the JAVeLEN Transport Protocol (the paper's primary contribution).

The package is organised exactly along the paper's component split:

* **eJTP**, the end-to-end component, lives in
  :mod:`repro.core.sender`, :mod:`repro.core.receiver` and
  :mod:`repro.core.connection`, with the destination-side control loops
  in :mod:`repro.core.path_monitor`, :mod:`repro.core.flipflop`,
  :mod:`repro.core.rate_controller` and :mod:`repro.core.feedback`.
* **iJTP**, the hop-by-hop component, lives in :mod:`repro.core.ijtp`
  (Algorithms 1 and 2) and :mod:`repro.core.cache` (in-network packet
  caching with LRU/FIFO eviction).
* The adjustable-reliability mathematics of Section 3 (Equations 1–4)
  is in :mod:`repro.core.reliability`, and the analytic caching-gain
  model of Section 4.1 (Equations 5–6) in :mod:`repro.core.analysis`.
* Packet formats (Figure 2) and their binary codec are in
  :mod:`repro.core.packet`; all tunables (Table 1 plus controller
  gains) are in :mod:`repro.core.config`.
"""

from repro.core.config import JTPConfig, FeedbackMode, CachePolicy
from repro.core.packet import Packet, PacketType, AckInfo, PacketCodec
from repro.core.reliability import (
    per_link_success_target,
    attempts_for_target,
    updated_loss_tolerance,
    end_to_end_success_probability,
    plan_hop_attempts,
)
from repro.core.cache import PacketCache
from repro.core.flipflop import FlipFlopFilter, FilterReading
from repro.core.path_monitor import PathMonitor, PathSample
from repro.core.rate_controller import PIMDRateController, EnergyBudgetController, simulate_rate_convergence
from repro.core.feedback import FeedbackScheduler
from repro.core.ijtp import IntermediateJTP
from repro.core.sender import JTPSender
from repro.core.receiver import JTPReceiver
from repro.core.connection import JTPConnection, open_transfer
from repro.core.analysis import (
    expected_transmissions_with_caching,
    expected_transmissions_without_caching,
    caching_gain,
)

__all__ = [
    "JTPConfig",
    "FeedbackMode",
    "CachePolicy",
    "Packet",
    "PacketType",
    "AckInfo",
    "PacketCodec",
    "per_link_success_target",
    "attempts_for_target",
    "updated_loss_tolerance",
    "end_to_end_success_probability",
    "plan_hop_attempts",
    "PacketCache",
    "FlipFlopFilter",
    "FilterReading",
    "PathMonitor",
    "PathSample",
    "PIMDRateController",
    "EnergyBudgetController",
    "simulate_rate_convergence",
    "FeedbackScheduler",
    "IntermediateJTP",
    "JTPSender",
    "JTPReceiver",
    "JTPConnection",
    "open_transfer",
    "expected_transmissions_with_caching",
    "expected_transmissions_without_caching",
    "caching_gain",
]
