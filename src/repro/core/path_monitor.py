"""Destination-side path monitoring (Section 5.1).

eJTP at the destination collects per-packet samples of the path's
state — the minimum available rate stamped along the path and the
energy used by each packet — and runs one flip-flop filter per metric.
A persistent change in either metric (a run of consecutive outliers)
is a *significant change* that triggers an early feedback message; the
filtered averages are what the PI²/MD rate controller and the energy
budget controller consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import JTPConfig
from repro.core.flipflop import FilterReading, FlipFlopFilter
from repro.core.packet import Packet
from repro.util.ewma import EWMA


@dataclass(frozen=True)
class PathSample:
    """The monitor's interpretation of one received data packet."""

    available_rate: FilterReading
    energy_used: Optional[FilterReading]
    significant_change: bool


class PathMonitor:
    """Flip-flop-filtered view of the forward path as seen at the destination."""

    def __init__(self, config: Optional[JTPConfig] = None):
        self.config = config or JTPConfig()
        cfg = self.config
        self.rate_filter = FlipFlopFilter(
            alpha_stable=cfg.alpha_stable,
            alpha_agile=cfg.alpha_agile,
            beta=cfg.beta_range,
            sigma=cfg.control_limit_sigma,
            d2=cfg.control_limit_d2,
            outlier_trigger_count=cfg.outlier_trigger_count,
        )
        self.energy_filter = FlipFlopFilter(
            alpha_stable=cfg.alpha_stable,
            alpha_agile=cfg.alpha_agile,
            beta=cfg.beta_range,
            sigma=cfg.control_limit_sigma,
            d2=cfg.control_limit_d2,
            outlier_trigger_count=cfg.outlier_trigger_count,
        )
        self._rtt = EWMA(cfg.rtt_alpha)
        self.packets_observed = 0
        self.significant_changes = 0

    # -- sample ingestion ---------------------------------------------------------------

    def observe_packet(self, packet: Packet, now: float) -> PathSample:
        """Fold one received data packet's header information into the monitor."""
        self.packets_observed += 1
        rate_reading = self.rate_filter.update(self._bounded_rate(packet.available_rate_pps))
        energy_reading: Optional[FilterReading] = None
        if packet.energy_used > 0.0:
            energy_reading = self.energy_filter.update(packet.energy_used)
        significant = rate_reading.triggered or (energy_reading.triggered if energy_reading else False)
        if significant:
            self.significant_changes += 1
        return PathSample(
            available_rate=rate_reading,
            energy_used=energy_reading,
            significant_change=significant,
        )

    def observe_rtt(self, rtt_sample: float) -> float:
        """Fold an RTT sample (from an echoed timestamp) into the smoothed RTT."""
        if rtt_sample < 0:
            raise ValueError(f"RTT samples must be non-negative, got {rtt_sample}")
        return self._rtt.update(rtt_sample)

    def _bounded_rate(self, rate: float) -> float:
        """Clamp the stamped rate: an un-stamped packet carries +inf."""
        if rate == float("inf"):
            return self.config.max_rate_pps
        return max(0.0, rate)

    # -- values consumed by the controllers -----------------------------------------------

    @property
    def average_available_rate(self) -> Optional[float]:
        """Filtered minimum-available-rate estimate A̅ (Eq. 9 input)."""
        return self.rate_filter.mean

    @property
    def energy_upper_control_limit(self) -> Optional[float]:
        """The eUCL input to the energy budget controller (Eq. 13)."""
        return self.energy_filter.upper_control_limit

    @property
    def smoothed_rtt(self) -> Optional[float]:
        """Smoothed round-trip time estimate, if any ACK has been echoed yet."""
        return self._rtt.value

    def rtt_or(self, default: float) -> float:
        return self._rtt.value_or(default)

    @property
    def path_is_stable(self) -> bool:
        """True while neither filter is in its agile (catching-up) state."""
        return not (self.rate_filter.is_agile or self.energy_filter.is_agile)
