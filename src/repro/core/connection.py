"""JTP connections: wiring a sender and a receiver over a network.

A :class:`JTPConnection` creates the flow's statistics object, the
sender at the source node and the receiver at the destination node,
registers both as transport agents and starts them at the requested
time.  :func:`open_transfer` is the one-call convenience used by the
quickstart example; protocol installation across the network (iJTP on
every node) is handled by :func:`ensure_ijtp_installed` so multiple
connections share the same per-node modules.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import JTPConfig
from repro.core.ijtp import IntermediateJTP, install_ijtp_everywhere
from repro.core.receiver import JTPReceiver
from repro.core.sender import JTPSender
from repro.sim.network import Network
from repro.sim.stats import FlowStats
from repro.util.validation import require_non_negative, require_positive


def ensure_ijtp_installed(network: Network, config: Optional[JTPConfig] = None) -> List[IntermediateJTP]:
    """Install iJTP on every node of ``network`` exactly once.

    Subsequent calls return the modules installed by the first call, so
    several connections (or the experiment harness) can call this freely.
    """
    existing = getattr(network, "_ijtp_modules", None)
    if existing is not None:
        return existing
    modules = install_ijtp_everywhere(network, config=config)
    network._ijtp_modules = modules  # type: ignore[attr-defined]
    return modules


class JTPConnection:
    """One JTP transfer between two nodes of a network."""

    def __init__(
        self,
        network: Network,
        src: int,
        dst: int,
        transfer_bytes: float,
        config: Optional[JTPConfig] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        on_complete: Optional[Callable[[float], None]] = None,
    ):
        if src == dst:
            raise ValueError("source and destination must differ")
        require_positive(transfer_bytes, "transfer_bytes")
        require_non_negative(start_time, "start_time")
        self.network = network
        self.src = src
        self.dst = dst
        self.config = config or JTPConfig()
        self.flow_id = flow_id if flow_id is not None else network.allocate_flow_id()
        self.start_time = start_time

        self.flow_stats = FlowStats(self.flow_id, src, dst, transfer_bytes=transfer_bytes)
        network.stats.register_flow(self.flow_stats)

        self.sender = JTPSender(
            network.node(src),
            flow_id=self.flow_id,
            dst=dst,
            transfer_bytes=transfer_bytes,
            config=self.config,
            flow_stats=self.flow_stats,
            trace=network.trace,
            on_complete=on_complete,
        )
        self.receiver = JTPReceiver(
            network.node(dst),
            flow_id=self.flow_id,
            src=src,
            total_packets=self.sender.total_packets,
            config=self.config,
            flow_stats=self.flow_stats,
            trace=network.trace,
        )
        network.node(src).register_agent(self.flow_id, self.sender)
        network.node(dst).register_agent(self.flow_id, self.receiver)
        network.sim.schedule_at(max(start_time, network.sim.now), self._start)

    def _start(self) -> None:
        self.sender.start()
        self.receiver.start()

    # -- observers -------------------------------------------------------------------------

    @property
    def completed(self) -> bool:
        """Whether the sender has finished (all data acknowledged or forgiven)."""
        return self.sender.completed

    @property
    def delivered_fraction(self) -> float:
        """Fraction of the requested transfer delivered to the application."""
        return self.flow_stats.delivery_fraction()

    def describe(self) -> str:
        return (
            f"JTP flow {self.flow_id}: node {self.src} -> node {self.dst}, "
            f"{self.sender.total_packets} packets, loss tolerance "
            f"{self.config.loss_tolerance:.0%}"
        )


def open_transfer(
    network: Network,
    src: int,
    dst: int,
    transfer_bytes: float,
    config: Optional[JTPConfig] = None,
    start_time: float = 0.0,
    install_hop_modules: bool = True,
) -> JTPConnection:
    """Create a JTP transfer, installing iJTP network-wide if needed.

    This is the one-liner used by the examples::

        connection = open_transfer(network, src=0, dst=4, transfer_bytes=100_000)
        network.run(600)
        print(connection.flow_stats.unique_bytes_delivered)
    """
    config = config or JTPConfig()
    if install_hop_modules:
        ensure_ijtp_installed(network, config)
    return JTPConnection(network, src, dst, transfer_bytes, config=config, start_time=start_time)
