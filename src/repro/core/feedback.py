"""Feedback scheduling at the destination (Section 5.1).

JTP keeps the feedback/ACK stream as sparse as the path's stability and
the application's requirements allow.  On a stable path feedback is
sent every ``T`` seconds with

    ``T = max(T_lower_bound, n / sending_rate)``,  n >= 1,

so the destination never acknowledges faster than the data arrives.
``T`` is additionally capped by the in-network cache size: if feedback
is so infrequent that requested packets have already been evicted from
the caches, the energy saved on ACKs is given straight back in source
retransmissions.  With a cache of ``C`` packets and a round-trip time
``RTT`` the cap is ``C / sending_rate − RTT``.

Significant path changes detected by the flip-flop monitor bypass the
schedule and trigger an immediate (early) feedback message.  A
``CONSTANT`` mode is provided for the Figure 7 comparison against
fixed-rate feedback.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FeedbackMode, JTPConfig
from repro.util.validation import require_positive


class FeedbackScheduler:
    """Decides when the destination sends its next feedback packet."""

    def __init__(self, config: Optional[JTPConfig] = None):
        self.config = config or JTPConfig()
        self.regular_feedbacks = 0
        self.early_feedbacks = 0

    # -- period computation ----------------------------------------------------------------

    def variable_period(self, sending_rate: float, rtt: float = 0.0) -> float:
        """The stable-path feedback period T for the current sending rate."""
        cfg = self.config
        require_positive(sending_rate, "sending_rate")
        if rtt < 0:
            raise ValueError(f"rtt must be non-negative, got {rtt}")
        period = max(cfg.t_lower_bound, cfg.feedback_n / sending_rate)
        cache_cap = self.cache_limited_period(sending_rate, rtt)
        if cache_cap is not None:
            period = min(period, max(cache_cap, cfg.feedback_n / sending_rate))
        return period

    def cache_limited_period(self, sending_rate: float, rtt: float) -> Optional[float]:
        """Upper bound on T so SNACKed packets are still cached when requested.

        ``C / sending_rate − RTT`` with cache size C in packets.  Returns
        None when caching is disabled (no cache to be limited by — the
        JNC variant relies on source retransmissions anyway).
        """
        if not self.config.caching_enabled:
            return None
        require_positive(sending_rate, "sending_rate")
        bound = self.config.cache_size / sending_rate - rtt
        return max(bound, 0.0)

    def period(self, sending_rate: float, rtt: float = 0.0) -> float:
        """The feedback period under the configured mode."""
        if self.config.feedback_mode is FeedbackMode.CONSTANT:
            return self.config.constant_feedback_period
        return self.variable_period(sending_rate, rtt)

    # -- bookkeeping -------------------------------------------------------------------------

    def note_regular_feedback(self) -> None:
        """Record that a scheduled (periodic) feedback message was sent."""
        self.regular_feedbacks += 1

    def note_early_feedback(self) -> None:
        """Record that a monitor-triggered (early) feedback message was sent."""
        self.early_feedbacks += 1

    @property
    def total_feedbacks(self) -> int:
        return self.regular_feedbacks + self.early_feedbacks

    def sender_timeout(self, period: float) -> float:
        """Value placed in the ACK's sender-timeout field.

        The source treats the absence of feedback for longer than this
        (times the configured multiplier) as feedback loss and backs off
        multiplicatively — the paper's defence against rate-based flow
        control's vulnerability to lost feedback.
        """
        require_positive(period, "period")
        return period
