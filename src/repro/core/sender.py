"""eJTP sender (source side of a JTP connection).

The sender's job is deliberately small — JTP is receiver-driven — but
what it does is central to the energy story:

* fragment the application transfer into packets and pace them out at
  the rate the destination currently allows;
* stamp every packet with the application's loss tolerance and the
  current per-packet energy budget;
* on feedback, retransmit only the SNACK entries *not* already served
  by an in-network cache, and **back off** its sending rate by
  ``t_b = Σ s_j / r(t)`` to account for the locally-recovered packets
  retransmitted on its behalf (Section 4.2, the fairness mechanism of
  Figure 5);
* treat prolonged feedback silence as feedback loss and back off
  multiplicatively (Section 5's defence for rate-based flow control);
* keep every unacknowledged packet buffered until the *destination*
  acknowledges it — caches are an optimisation, not the copy of record,
  which is how JTP preserves the end-to-end argument.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.config import JTPConfig
from repro.core.packet import Packet, PacketType
from repro.sim.stats import FlowStats
from repro.sim.trace import TraceRecorder
from repro.util.validation import clamp, require_positive


class JTPSender:
    """Source endpoint of one JTP transfer."""

    #: Seconds to wait before retransmitting the same packet again.
    #: Successive feedback messages keep SNACKing a missing packet until
    #: the copy in flight arrives; resending on every one of them would
    #: waste full-path transmissions.
    RESEND_HOLDOFF = 6.0

    def __init__(
        self,
        node,
        flow_id: int,
        dst: int,
        transfer_bytes: float,
        config: Optional[JTPConfig] = None,
        flow_stats: Optional[FlowStats] = None,
        trace: Optional[TraceRecorder] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.flow_id = flow_id
        self.dst = dst
        self.transfer_bytes = require_positive(transfer_bytes, "transfer_bytes")
        self.config = config or JTPConfig()
        self.flow_stats = flow_stats or FlowStats(flow_id, node.node_id, dst, transfer_bytes)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.on_complete = on_complete

        self._segments: List[float] = self._fragment(self.transfer_bytes, self.config.packet_size_bytes)
        self._pending_new: Deque[int] = deque(range(len(self._segments)))
        self._outstanding: Dict[int, float] = {}
        self._retransmit_queue: Deque[int] = deque()
        self._retransmit_set: Set[int] = set()
        self._unserved_acks: Dict[int, int] = {}
        self._last_sent_at: Dict[int, float] = {}

        self._rate_pps = self.config.initial_rate_pps
        self._energy_budget = float("inf")
        self._expected_feedback_period = self.config.t_lower_bound
        self._last_feedback_time: Optional[float] = None
        self._backoff_until = 0.0
        self._send_event = None
        self._watchdog_event = None
        self._started = False
        self.completed = False
        self.completion_time: Optional[float] = None
        self.acks_received = 0

    # -- setup ------------------------------------------------------------------------------

    @staticmethod
    def _fragment(transfer_bytes: float, packet_size: float) -> List[float]:
        """Split the transfer into payload sizes (the application-specific module)."""
        segments: List[float] = []
        remaining = transfer_bytes
        while remaining > 0:
            chunk = min(packet_size, remaining)
            segments.append(chunk)
            remaining -= chunk
        return segments

    @property
    def total_packets(self) -> int:
        """Number of data packets the transfer fragments into."""
        return len(self._segments)

    @property
    def rate_pps(self) -> float:
        """Current sending rate (packets per second) allowed by the destination."""
        return self._rate_pps

    @property
    def energy_budget(self) -> float:
        """Current per-packet energy budget stamped into outgoing packets."""
        return self._energy_budget

    @property
    def outstanding_packets(self) -> int:
        """Packets sent but not yet acknowledged by the destination."""
        return len(self._outstanding)

    def start(self) -> None:
        """Begin the transfer: compute the initial energy budget, start pacing."""
        if self._started:
            return
        self._started = True
        self._energy_budget = self._initial_energy_budget()
        self.flow_stats.start_time = self.sim.now
        self._schedule_send(0.0)
        self._watchdog_event = self.sim.schedule(self._expected_feedback_period, self._feedback_watchdog)

    def _initial_energy_budget(self) -> float:
        """Budget from the energy the network would *typically* spend per packet.

        The source estimates one transmit+receive per hop along its
        current view of the path and applies a configurable margin.
        """
        hops = self.node.routing.hops_to(self.node.node_id, self.dst) or 1
        packet_bits = (self.config.packet_size_bytes + self.config.header_bytes) * 8.0
        per_hop = self.node.mac.config.energy.round_trip_energy(packet_bits)
        return self.config.initial_energy_budget_margin * hops * per_hop

    # -- pacing loop ---------------------------------------------------------------------------

    def _schedule_send(self, delay: float) -> None:
        if self._send_event is not None:
            self._send_event.cancel()
        self._send_event = self.sim.schedule(delay, self._send_next)

    def _send_next(self) -> None:
        if self.completed:
            return
        now = self.sim.now
        if now < self._backoff_until:
            self._schedule_send(self._backoff_until - now)
            return
        seq = self._next_seq_to_send()
        if seq is None:
            self._maybe_complete()
            if not self.completed:
                # Nothing to send but data is still unacknowledged: wait for feedback.
                self._schedule_send(max(1.0 / self._rate_pps, 0.5))
            return
        retransmission = seq in self._outstanding
        packet = self._build_packet(seq, retransmission=retransmission)
        self._outstanding[seq] = self._segments[seq]
        self._last_sent_at[seq] = now
        accepted = self.node.send(packet)
        self.flow_stats.record_send(now, self._segments[seq], retransmission=retransmission)
        self.trace.record(
            "jtp_send", now, flow=self.flow_id, seq=seq,
            retransmission=retransmission, rate=self._rate_pps, accepted=accepted,
        )
        self._schedule_send(1.0 / self._rate_pps)

    def _next_seq_to_send(self) -> Optional[int]:
        while self._retransmit_queue:
            seq = self._retransmit_queue.popleft()
            self._retransmit_set.discard(seq)
            if seq in self._outstanding:
                return seq
        if self._pending_new:
            return self._pending_new.popleft()
        return None

    def _build_packet(self, seq: int, retransmission: bool = False) -> Packet:
        now = self.sim.now
        # A retransmitted packet was explicitly requested by the
        # destination, so it is sent with full reliability regardless of
        # the application's loss tolerance for first attempts.
        loss_tolerance = 0.0 if retransmission else self.config.loss_tolerance
        return Packet(
            flow_id=self.flow_id,
            seq=seq,
            packet_type=PacketType.DATA,
            src=self.node.node_id,
            dst=self.dst,
            payload_bytes=self._segments[seq],
            header_bytes=self.config.header_bytes,
            loss_tolerance=loss_tolerance,
            energy_budget=self._energy_budget,
            available_rate_pps=float("inf"),
            created_at=now,
            timestamp=now,
        )

    # -- feedback handling -------------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Handle a feedback (ACK) packet delivered to this node."""
        if not packet.is_ack or packet.ack is None:
            return
        ack = packet.ack
        now = self.sim.now
        self.acks_received += 1
        self._last_feedback_time = now

        if ack.rate_pps > 0:
            self._rate_pps = clamp(ack.rate_pps, self.config.min_rate_pps, self.config.max_rate_pps)
        if ack.energy_budget > 0:
            self._energy_budget = ack.energy_budget
        if ack.sender_timeout > 0:
            self._expected_feedback_period = ack.sender_timeout

        self._apply_cumulative_ack(ack.cumulative_ack)
        self._apply_selective_acks(ack)
        self._queue_snack_retransmissions(ack.outstanding_snack())
        self._apply_cache_backoff(ack.locally_recovered, now)
        self._detect_tail_losses(ack)

        self.trace.record(
            "jtp_ack", now, flow=self.flow_id, cumulative=ack.cumulative_ack,
            snack=len(ack.snack), recovered=len(ack.locally_recovered), rate=self._rate_pps,
        )
        self._maybe_complete()

    def _apply_cumulative_ack(self, cumulative_ack: int) -> None:
        if cumulative_ack < 0:
            return
        for seq in [s for s in self._outstanding if s <= cumulative_ack]:
            del self._outstanding[seq]
            self._unserved_acks.pop(seq, None)

    def _apply_selective_acks(self, ack) -> None:
        """Release packets implicitly acknowledged by the SNACK semantics.

        Everything at or below the receiver's highest received sequence
        number that is neither SNACKed (still missing and wanted) nor
        listed as locally recovered (in flight from a cache) has been
        delivered and can be dropped from the send buffer.
        """
        if ack.highest_received < 0:
            return
        pending = set(ack.snack) | set(ack.locally_recovered)
        for seq in [s for s in self._outstanding if s <= ack.highest_received and s not in pending]:
            del self._outstanding[seq]
            self._unserved_acks.pop(seq, None)

    def _queue_snack_retransmissions(self, snack) -> None:
        now = self.sim.now
        for seq in snack:
            if seq not in self._outstanding or seq in self._retransmit_set:
                continue
            last_sent = self._last_sent_at.get(seq)
            if last_sent is not None and now - last_sent < self.RESEND_HOLDOFF:
                continue
            self._retransmit_queue.append(seq)
            self._retransmit_set.add(seq)

    def _detect_tail_losses(self, ack) -> None:
        """Recover packets the receiver cannot know it is missing.

        A packet lost at the tail of the transfer (beyond the highest
        sequence number the receiver ever saw) never appears in any
        SNACK, so the source must notice the silence itself: if all new
        data has been sent and an outstanding packet survives a couple
        of feedback messages without being acknowledged, SNACKed or
        locally recovered, it is retransmitted end-to-end.  These are
        exactly the "occasional retransmissions from the source" the
        paper accepts as unavoidable.
        """
        if self._pending_new:
            return
        mentioned = set(ack.snack) | set(ack.locally_recovered)
        for seq in self._outstanding:
            if seq <= max(ack.cumulative_ack, ack.highest_received):
                continue
            if seq in mentioned or seq in self._retransmit_set:
                continue
            count = self._unserved_acks.get(seq, 0) + 1
            if count >= 2:
                self._retransmit_queue.append(seq)
                self._retransmit_set.add(seq)
                self._unserved_acks[seq] = 0
            else:
                self._unserved_acks[seq] = count

    def _apply_cache_backoff(self, locally_recovered, now: float) -> None:
        """Section 4.2: back off for packets retransmitted by in-network caches."""
        if not self.config.backoff_enabled or not locally_recovered:
            return
        recovered_count = len(locally_recovered)
        backoff = recovered_count / max(self._rate_pps, self.config.min_rate_pps)
        self._backoff_until = max(self._backoff_until, now + backoff)
        self.flow_stats.sender_backoffs += 1
        self.trace.record("jtp_backoff", now, flow=self.flow_id,
                          recovered=recovered_count, backoff=backoff)

    # -- feedback-loss watchdog ---------------------------------------------------------------------

    def _feedback_watchdog(self) -> None:
        if self.completed:
            return
        now = self.sim.now
        timeout = self.config.ack_timeout_multiplier * self._expected_feedback_period
        reference = self._last_feedback_time if self._last_feedback_time is not None else self.flow_stats.start_time
        if reference is not None and now - reference > timeout:
            self._rate_pps = clamp(
                self._rate_pps * self.config.kd, self.config.min_rate_pps, self.config.max_rate_pps
            )
            self._last_feedback_time = now
            self.trace.record("jtp_feedback_timeout", now, flow=self.flow_id, rate=self._rate_pps)
        self._watchdog_event = self.sim.schedule(self._expected_feedback_period, self._feedback_watchdog)

    # -- completion -------------------------------------------------------------------------------------

    def _maybe_complete(self) -> None:
        if self.completed:
            return
        if self._pending_new or self._outstanding or self._retransmit_queue:
            return
        self.completed = True
        self.completion_time = self.sim.now
        self.flow_stats.completion_time = self.sim.now
        if self._send_event is not None:
            self._send_event.cancel()
        if self._watchdog_event is not None:
            self._watchdog_event.cancel()
        self.trace.record("jtp_complete", self.sim.now, flow=self.flow_id)
        if self.on_complete is not None:
            self.on_complete(self.sim.now)
