"""Flip-flop filtering with statistical control limits (Section 5.1).

The destination monitors path metrics (minimum available rate, per
packet energy used) with an EWMA pair borrowed from statistical quality
control:

    ``x̄ ← (1 - α) x̄ + α x_i``                                  (Eq. 7)
    ``R̄ ← (1 - β) R̄ + β |x_i - x_{i-1}|``

and declares a sample an **outlier** when it falls outside

    ``UCL/LCL = x̄ ± 3 R̄ / 1.128``                               (Eq. 8)

Under normal operation the *stable* filter (small α) smooths away noise
and feedback stays at its low regular rate.  A run of consecutive
outliers signals a persistent change: the monitor switches to the
*agile* filter (large α) so the average catches up quickly, and an
immediate feedback message is triggered.  Once samples fall back inside
the control limits the stable filter takes over again — the "flip-flop"
of the name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import require_in_range, require_positive


@dataclass(frozen=True)
class FilterReading:
    """Result of folding one sample into the flip-flop filter."""

    sample: float
    mean: float
    deviation: float
    upper_control_limit: float
    lower_control_limit: float
    is_outlier: bool
    triggered: bool
    agile: bool


class FlipFlopFilter:
    """One flip-flop-filtered path metric."""

    def __init__(
        self,
        alpha_stable: float = 0.1,
        alpha_agile: float = 0.6,
        beta: float = 0.1,
        sigma: float = 3.0,
        d2: float = 1.128,
        outlier_trigger_count: int = 3,
    ):
        self.alpha_stable = require_in_range(alpha_stable, 0.0, 1.0, "alpha_stable")
        self.alpha_agile = require_in_range(alpha_agile, 0.0, 1.0, "alpha_agile")
        if self.alpha_agile < self.alpha_stable:
            raise ValueError("alpha_agile must be >= alpha_stable")
        self.beta = require_in_range(beta, 0.0, 1.0, "beta")
        self.sigma = require_positive(sigma, "sigma")
        self.d2 = require_positive(d2, "d2")
        self.outlier_trigger_count = int(require_positive(outlier_trigger_count, "outlier_trigger_count"))

        self._mean: Optional[float] = None
        self._range: Optional[float] = None
        self._previous: Optional[float] = None
        self._consecutive_outliers = 0
        self._agile = False
        self.samples = 0
        self.triggers = 0

    # -- read-only state ---------------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        """Current filtered average x̄ (None before the first sample)."""
        return self._mean

    @property
    def deviation(self) -> Optional[float]:
        """Current filtered range R̄ (None before the first sample)."""
        return self._range

    @property
    def is_agile(self) -> bool:
        """Whether the agile (fast-tracking) filter is currently active."""
        return self._agile

    @property
    def upper_control_limit(self) -> Optional[float]:
        if self._mean is None or self._range is None:
            return None
        return self._mean + self.sigma * self._range / self.d2

    @property
    def lower_control_limit(self) -> Optional[float]:
        if self._mean is None or self._range is None:
            return None
        return self._mean - self.sigma * self._range / self.d2

    # -- updates ------------------------------------------------------------------------

    def update(self, sample: float) -> FilterReading:
        """Fold ``sample`` in, returning the full reading (Eqs. 7-8 plus flip-flop state)."""
        sample = float(sample)
        self.samples += 1

        if self._mean is None:
            # Initialisation per the paper: x̄ = x0, R̄ = x0 / 2.
            self._mean = sample
            self._range = abs(sample) / 2.0
            self._previous = sample
            return FilterReading(
                sample=sample,
                mean=self._mean,
                deviation=self._range,
                upper_control_limit=self.upper_control_limit or sample,
                lower_control_limit=self.lower_control_limit or sample,
                is_outlier=False,
                triggered=False,
                agile=False,
            )

        ucl = self.upper_control_limit
        lcl = self.lower_control_limit
        assert ucl is not None and lcl is not None and self._range is not None and self._previous is not None
        is_outlier = sample > ucl or sample < lcl

        triggered = False
        if is_outlier:
            self._consecutive_outliers += 1
            if self._consecutive_outliers >= self.outlier_trigger_count and not self._agile:
                self._agile = True
                self.triggers += 1
                triggered = True
        else:
            self._consecutive_outliers = 0

        # Standard control-chart practice: isolated out-of-control points
        # do not update the chart statistics (otherwise one spike drags
        # the mean off-centre and the *next* normal sample looks like an
        # outlier too).  Once a run of outliers has flipped us to the
        # agile filter, samples are folded in with the large alpha so the
        # average catches up with the new regime quickly.
        if self._agile:
            self._mean = (1.0 - self.alpha_agile) * self._mean + self.alpha_agile * sample
        elif not is_outlier:
            self._mean = (1.0 - self.alpha_stable) * self._mean + self.alpha_stable * sample

        # R̄ is computed only from in-control samples so one wild value
        # does not blow the limits open and mask a real change.
        if not is_outlier:
            self._range = (1.0 - self.beta) * self._range + self.beta * abs(sample - self._previous)
            if self._agile:
                self._agile = False
        self._previous = sample

        return FilterReading(
            sample=sample,
            mean=self._mean,
            deviation=self._range,
            upper_control_limit=self.upper_control_limit or self._mean,
            lower_control_limit=self.lower_control_limit or self._mean,
            is_outlier=is_outlier,
            triggered=triggered,
            agile=self._agile,
        )

    def reset(self) -> None:
        """Forget all history (used when the path changes completely)."""
        self._mean = None
        self._range = None
        self._previous = None
        self._consecutive_outliers = 0
        self._agile = False
