"""Field data collection over a mobile multi-hop network.

A deployment-flavoured scenario: fifteen battery-powered nodes scattered
over a field, some of them slowly moving (random waypoint at walking
pace), each periodically uploading measurement bundles to a collection
point.  The example runs the same workload under JTP, ATP and TCP-SACK
and prints the energy-per-bit / goodput comparison — the mobile-network
story of the paper's Figure 11.

Run with::

    python examples/field_sensor_collection.py
"""

from repro.experiments.metrics import collect_metrics
from repro.experiments.report import format_table
from repro.experiments.scenarios import PAPER_LINK_QUALITY
from repro.sim.mobility import RandomWaypointMobility
from repro.sim.network import Network
from repro.transport.registry import make_protocol

NUM_NODES = 15
COLLECTOR = 0
UPLOAD_BYTES = 40_000
NUM_UPLOADERS = 5
DURATION = 900.0
SPEED_MPS = 1.0


def run_protocol(name: str, seed: int = 11):
    """Run the collection workload under one transport protocol."""
    network = Network.random(NUM_NODES, seed=seed, link_quality=PAPER_LINK_QUALITY)
    mobility = RandomWaypointMobility(
        network.channel,
        rng=network.streams.stream("mobility"),
        speed=SPEED_MPS,
        field_size=getattr(network, "field_size", 200.0),
        on_topology_change=network.routing.on_topology_change,
    )
    network.attach_mobility(mobility)

    protocol = make_protocol(name)
    protocol.install(network)
    uploaders = list(range(1, NUM_NODES))[:NUM_UPLOADERS]
    flows = [
        protocol.create_flow(network, src, COLLECTOR, UPLOAD_BYTES, start_time=20.0 * index)
        for index, src in enumerate(uploaders)
    ]
    network.run(DURATION)
    metrics = collect_metrics(network, flows, DURATION, name)
    return {
        "protocol": name,
        "energy_per_bit_uJ": round(metrics.energy_per_bit_microjoules, 2),
        "goodput_kbps": round(metrics.goodput_kbps, 3),
        "delivered_frac": round(metrics.delivered_fraction, 2),
        "source_rtx": metrics.source_retransmissions,
        "cache_recoveries": metrics.cache_recoveries,
        "queue_drops": metrics.queue_drops,
    }


def main() -> None:
    rows = [run_protocol(name) for name in ("jtp", "atp", "tcp")]
    print(format_table(rows, title=f"{NUM_UPLOADERS} uploads to a collector, "
                                   f"{NUM_NODES} nodes, {SPEED_MPS} m/s mobility"))
    print()
    print("Even while routes churn, JTP's in-network caches repair losses close to")
    print("the collector instead of re-sending across the whole (changing) path.")


if __name__ == "__main__":
    main()
