"""Quickstart: one JTP bulk transfer over a 5-node wireless chain.

Builds the smallest interesting scenario — a linear multi-hop network
with the paper's bursty link-loss model — opens a single fully reliable
JTP transfer across it, runs the simulation and prints the metrics the
paper cares about: energy per delivered bit, goodput, and how the
protocol's recovery machinery (in-network caches vs. the source) split
the repair work.

Run with::

    python examples/quickstart.py
"""

from repro import JTPConfig, Network, open_transfer
from repro.sim.channel import LinkQuality


def main() -> None:
    # A 5-node chain; each link alternates between a good and a bad state
    # (10% of the time bad, 3 s mean bad period), as in the paper's
    # linear-topology experiments.
    network = Network.linear(
        num_nodes=5,
        link_quality=LinkQuality(good_loss=0.05, bad_loss=0.6, bad_fraction=0.1),
        seed=42,
    )

    # One fully reliable 100 KB transfer from one end of the chain to the other.
    transfer = open_transfer(
        network,
        src=0,
        dst=4,
        transfer_bytes=100_000,
        config=JTPConfig(),  # Table 1 defaults: 800 B packets, 5 attempts, 1000-pkt caches
    )
    print(transfer.describe())

    network.run(duration=1200.0)

    stats = transfer.flow_stats
    network_stats = network.stats
    print(f"completed:                {transfer.completed}")
    print(f"delivered:                {stats.unique_bytes_delivered / 1e3:.1f} kB "
          f"({transfer.delivered_fraction:.1%} of the transfer)")
    print(f"energy per delivered bit: {network_stats.energy_per_delivered_bit() * 1e6:.2f} uJ/bit")
    print(f"goodput:                  {stats.flow_goodput_bps(network.sim.now) / 1e3:.2f} kbit/s")
    print(f"link-layer transmissions: {network_stats.link_transmissions}")
    print(f"source retransmissions:   {stats.source_retransmissions}")
    print(f"cache recoveries:         {stats.cache_recoveries}")
    print(f"feedback packets:         {stats.acks_sent}")
    print(f"per-node energy (J):      "
          + ", ".join(f"n{n}={j:.2f}" for n, j in sorted(network_stats.per_node_energy().items())))


if __name__ == "__main__":
    main()
