"""Protocol shoot-out across path lengths (the Figure 9 experiment, small).

Runs two competing bulk transfers end-to-end over linear networks of
increasing length under JTP, the ATP-like explicit-rate baseline and
rate-paced TCP-SACK, and prints energy per delivered bit and per-flow
goodput for each — a scaled-down regeneration of the paper's Figure 9.

The per-seed runs execute on a pluggable backend: ``--backend process``
(the default) fans out over a persistent process pool, ``--backend
serial`` (or ``--workers 0``) runs in-process, and ``--backend thread``
uses the thread pool.  ``--seeds N`` scales the replication; ``--paper``
uses the paper's replication count (:data:`PAPER_LINEAR` seeds per
cell).  The printed rows are bit-identical for every backend and worker
count.

``--out DIR`` persists the rows through the results store
(:mod:`repro.experiments.results`): ``DIR`` becomes a run directory with
``figure9.json``/``figure9.csv`` plus a manifest recording the seeds,
backend and git provenance — reload it with ``load_run(DIR)`` or render
it with ``python -m repro.experiments DIR``.  Adding ``--plots`` also
renders the run to ``DIR/plots/figure9.png`` through :mod:`repro.plots`
(matplotlib if installed, the stdlib fallback otherwise).

Run with::

    python examples/protocol_shootout.py [--workers N] [--backend NAME] [--seeds N | --paper] [--out DIR [--plots]]
"""

import argparse

from repro.experiments.backends import BACKENDS, make_backend, resolve_backend
from repro.experiments.figures import figure9
from repro.experiments.presets import PAPER_LINEAR, SMOKE_LINEAR, preset_seeds
from repro.experiments.report import format_table
from repro.experiments.results import git_metadata, save_run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count (default: one per CPU core; 0 or 1 = serial)")
    parser.add_argument("--backend", choices=sorted(set(BACKENDS) - {"async"}), default=None,
                        help="executor backend (default: the shared persistent process pool; "
                             "'async' is an API stub and not runnable)")
    parser.add_argument("--seeds", type=int, default=None,
                        help=f"independent replications per cell (default: {SMOKE_LINEAR})")
    parser.add_argument("--paper", action="store_true",
                        help=f"use the paper's replication count ({PAPER_LINEAR} seeds per cell)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="persist the rows into run directory DIR via the results store")
    parser.add_argument("--plots", action="store_true",
                        help="with --out: also render the run to DIR/plots/figure9.png")
    args = parser.parse_args()
    if args.plots and not args.out:
        parser.error("--plots needs --out DIR (the plots render from the persisted run)")

    if args.paper:
        seeds = preset_seeds("paper", family="linear")
    elif args.seeds is not None:
        seeds = preset_seeds(args.seeds, family="linear")
    else:
        seeds = preset_seeds("smoke", family="linear")

    if args.backend is not None:
        # Passed verbatim: pooled backends reject workers<=0 loudly
        # rather than silently falling back to a cpu_count pool.
        backend = make_backend(args.backend, workers=args.workers)
    else:
        backend = resolve_backend(workers=args.workers)

    rows = figure9(
        net_sizes=(3, 5, 7),
        protocols=("jtp", "atp", "tcp"),
        seeds=seeds,
        transfer_bytes=200_000,
        duration=1000.0,
        backend=backend,
    )
    if args.out:
        run_dir = save_run(
            {"figure9": rows},
            args.out,
            metadata={
                "driver": "protocol_shootout",
                "seeds": list(seeds),
                "backend": backend.name,
                "workers": backend.workers,
                "git": git_metadata(),
            },
        )
        print(f"rows persisted to {run_dir} (render with: python -m repro.experiments {run_dir})")
        if args.plots:
            from repro.plots import render_run

            for name, path in render_run(run_dir).items():
                print(f"{name} rendered to {path}")
        print()
    print(format_table(
        rows,
        columns=["netSize", "protocol", "energy_per_bit_uJ", "goodput_kbps"],
        title="Energy per bit and goodput vs. path length (2 competing flows)",
    ))
    print()
    print("Expected shape (paper, Figure 9): JTP spends the least energy per bit and")
    print("sustains the highest goodput; TCP pays for its chatty ACK stream and")
    print("loss-driven congestion control, and the gap widens with path length.")


if __name__ == "__main__":
    main()
