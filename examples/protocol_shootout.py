"""Protocol shoot-out across path lengths (the Figure 9 experiment, small).

Runs two competing bulk transfers end-to-end over linear networks of
increasing length under JTP, the ATP-like explicit-rate baseline and
rate-paced TCP-SACK, and prints energy per delivered bit and per-flow
goodput for each — a scaled-down regeneration of the paper's Figure 9.

The per-seed runs fan out over a process pool; ``--workers 1`` forces
serial execution and ``--seeds N`` scales the replication up.  The
printed rows are bit-identical for any worker count.

Run with::

    python examples/protocol_shootout.py [--workers N] [--seeds N]
"""

import argparse

from repro.experiments.figures import figure9
from repro.experiments.parallel import spawn_seeds
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per CPU core; 1 = serial)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="independent replications per cell (default: 1)")
    args = parser.parse_args()

    rows = figure9(
        net_sizes=(3, 5, 7),
        protocols=("jtp", "atp", "tcp"),
        seeds=spawn_seeds(base_seed=1, count=args.seeds) if args.seeds > 1 else (1,),
        transfer_bytes=200_000,
        duration=1000.0,
        workers=args.workers,
    )
    print(format_table(
        rows,
        columns=["netSize", "protocol", "energy_per_bit_uJ", "goodput_kbps"],
        title="Energy per bit and goodput vs. path length (2 competing flows)",
    ))
    print()
    print("Expected shape (paper, Figure 9): JTP spends the least energy per bit and")
    print("sustains the highest goodput; TCP pays for its chatty ACK stream and")
    print("loss-driven congestion control, and the gap widens with path length.")


if __name__ == "__main__":
    main()
