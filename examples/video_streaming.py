"""Loss-tolerant media delivery: trading reliability for energy.

The paper's Section 3 motivates adjustable reliability with media
applications (voice, video, images) that tolerate a fraction of lost
packets.  This example transfers the same "video segment" across a
6-node chain three times — with 0%, 10% and 20% loss tolerance — and
shows how JTP spends progressively less energy while still delivering
at least the fraction the application asked for.

Run with::

    python examples/video_streaming.py
"""

from repro import JTPConfig, Network, open_transfer
from repro.experiments.report import format_table
from repro.sim.channel import LinkQuality

SEGMENT_BYTES = 120_000
NUM_NODES = 6
LINK = LinkQuality(good_loss=0.05, bad_loss=0.6, bad_fraction=0.1)


def stream_segment(loss_tolerance: float, seed: int = 7) -> dict:
    """Deliver one segment with the given loss tolerance; return a result row."""
    network = Network.linear(NUM_NODES, link_quality=LINK, seed=seed)
    config = JTPConfig(loss_tolerance=loss_tolerance)
    transfer = open_transfer(network, src=0, dst=NUM_NODES - 1,
                             transfer_bytes=SEGMENT_BYTES, config=config)
    network.run(900.0)
    stats = transfer.flow_stats
    return {
        "profile": f"jtp{int(loss_tolerance * 100)}",
        "loss_tolerance": f"{loss_tolerance:.0%}",
        "delivered_kB": round(stats.unique_bytes_delivered / 1e3, 1),
        "required_kB": round(SEGMENT_BYTES * (1 - loss_tolerance) / 1e3, 1),
        "requirement_met": stats.unique_bytes_delivered >= SEGMENT_BYTES * (1 - loss_tolerance) - 1e-6,
        "total_energy_J": round(network.stats.total_energy_joules(), 3),
        "link_transmissions": network.stats.link_transmissions,
        "source_rtx": stats.source_retransmissions,
    }


def main() -> None:
    rows = [stream_segment(tolerance) for tolerance in (0.0, 0.10, 0.20)]
    print(format_table(rows, title="Streaming one 120 kB segment over a 6-node chain"))
    print()
    print("Higher loss tolerance lets iJTP grant fewer link-layer attempts per packet,")
    print("so the network spends fewer transmissions (and less energy) on data the")
    print("application can live without — the Figure 3 trade-off.")


if __name__ == "__main__":
    main()
